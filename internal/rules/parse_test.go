package rules

import (
	"testing"

	"repro/internal/simtime"
)

func TestParseFullRule(t *testing.T) {
	r, err := Parse(`lock-up: WHEN P1.presence=away IF LK1.lock=unlocked THEN LK1.lock=locked`)
	if err != nil {
		t.Fatal(err)
	}
	if r.Name != "lock-up" {
		t.Fatalf("name = %q", r.Name)
	}
	if r.Trigger != (Trigger{Device: "P1", Attribute: "presence", Value: "away"}) {
		t.Fatalf("trigger = %+v", r.Trigger)
	}
	eq, ok := r.Condition.(Eq)
	if !ok || eq != (Eq{Device: "LK1", Attribute: "lock", Value: "unlocked"}) {
		t.Fatalf("condition = %+v", r.Condition)
	}
	if len(r.Actions) != 1 || r.Actions[0] != (Action{Kind: ActionCommand, Device: "LK1", Attribute: "lock", Value: "locked"}) {
		t.Fatalf("actions = %+v", r.Actions)
	}
}

func TestParseUnconditionalNotify(t *testing.T) {
	r, err := Parse(`alert: WHEN SD1.smoke=detected THEN NOTIFY "smoke!"`)
	if err != nil {
		t.Fatal(err)
	}
	if r.Condition != nil {
		t.Fatal("condition should be nil")
	}
	if len(r.Actions) != 1 || r.Actions[0].Kind != ActionNotify || r.Actions[0].Message != "smoke!" {
		t.Fatalf("actions = %+v", r.Actions)
	}
}

func TestParseMultipleActionsAndConditions(t *testing.T) {
	r, err := Parse(`combo: WHEN W1.water=wet IF H3.mode=away AND NOT P1.presence=present THEN V1.valve=closed AND NOTIFY "leak"`)
	if err != nil {
		t.Fatal(err)
	}
	and, ok := r.Condition.(And)
	if !ok || len(and) != 2 {
		t.Fatalf("condition = %+v", r.Condition)
	}
	if _, ok := and[1].(Not); !ok {
		t.Fatalf("second condition should be negated: %+v", and[1])
	}
	if len(r.Actions) != 2 || r.Actions[0].Kind != ActionCommand || r.Actions[1].Kind != ActionNotify {
		t.Fatalf("actions = %+v", r.Actions)
	}
}

func TestParseWildcardTrigger(t *testing.T) {
	r, err := Parse(`any: WHEN T1.heating=* THEN NOTIFY "changed"`)
	if err != nil {
		t.Fatal(err)
	}
	if r.Trigger.Value != "" {
		t.Fatalf("wildcard trigger value = %q, want empty", r.Trigger.Value)
	}
}

func TestParseCaseInsensitiveKeywords(t *testing.T) {
	r, err := Parse(`k: when A.b=c if D.e=f then G.h=i`)
	if err != nil {
		t.Fatal(err)
	}
	if r.Trigger.Device != "A" || r.Actions[0].Device != "G" {
		t.Fatalf("parsed = %+v", r)
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		``,
		`no-colon WHEN A.b=c THEN D.e=f`,
		`n: A.b=c THEN D.e=f`,            // missing WHEN
		`n: WHEN A.b=c`,                  // missing THEN
		`n: WHEN Ab=c THEN D.e=f`,        // trigger not dev.attr
		`n: WHEN A.b=c THEN De=f`,        // action not dev.attr
		`n: WHEN A.b=c THEN NOTIFY ""`,   // empty notify
		`n: WHEN A.b=c IF Xy THEN D.e=f`, // bad condition
		`n: WHEN A.b= THEN D.e=f`,        // empty value
	}
	for _, s := range bad {
		if _, err := Parse(s); err == nil {
			t.Errorf("Parse(%q) should fail", s)
		}
	}
}

func TestMustParsePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	MustParse("garbage")
}

func TestParsedRuleExecutes(t *testing.T) {
	e := NewEngine(simtime.NewClock())
	fired := 0
	e.Execute = func(Action, Event) { fired++ }
	if err := e.AddRule(MustParse(`r: WHEN D.a=1 IF C.x=ok THEN NOTIFY "go"`)); err != nil {
		t.Fatal(err)
	}
	e.HandleEvent(Event{Device: "C", Attribute: "x", Value: "ok"})
	e.HandleEvent(Event{Device: "D", Attribute: "a", Value: "1"})
	if fired != 1 {
		t.Fatalf("fired = %d", fired)
	}
}

func TestParseRoundTripStrings(t *testing.T) {
	// The String forms of parsed pieces are stable and readable.
	r := MustParse(`x: WHEN A.b=c IF D.e=f AND NOT G.h=i THEN NOTIFY "m"`)
	if got := r.Trigger.String(); got != "A.b=c" {
		t.Fatalf("trigger string = %q", got)
	}
	if got := r.Condition.String(); got != "(D.e==f && !(G.h==i))" {
		t.Fatalf("condition string = %q", got)
	}
	if got := r.Actions[0].String(); got != `notify("m")` {
		t.Fatalf("action string = %q", got)
	}
}
