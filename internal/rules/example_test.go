package rules_test

import (
	"fmt"
	"time"

	"repro/internal/rules"
	"repro/internal/simtime"
)

func ExampleParse() {
	r, err := rules.Parse(`lock-up: WHEN P1.presence=away IF LK1.lock=unlocked THEN LK1.lock=locked`)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Println("name:", r.Name)
	fmt.Println("trigger:", r.Trigger)
	fmt.Println("condition:", r.Condition)
	fmt.Println("action:", r.Actions[0])
	// Output:
	// name: lock-up
	// trigger: P1.presence=away
	// condition: LK1.lock==unlocked
	// action: command(LK1.lock=locked)
}

func ExampleEngine_HandleEvent() {
	clk := simtime.NewClock()
	e := rules.NewEngine(clk)
	e.Execute = func(a rules.Action, cause rules.Event) {
		fmt.Printf("fired %v because %s.%s=%s\n", a, cause.Device, cause.Attribute, cause.Value)
	}
	if err := e.AddRule(rules.MustParse(`alert: WHEN SD1.smoke=detected THEN NOTIFY "smoke!"`)); err != nil {
		fmt.Println("error:", err)
		return
	}
	e.HandleEvent(rules.Event{
		Device: "SD1", Attribute: "smoke", Value: "detected",
		GeneratedAt: 5 * time.Second, ReceivedAt: 5 * time.Second,
	})
	// Output:
	// fired notify("smoke!") because SD1.smoke=detected
}
