package rules

import (
	"fmt"
	"strings"
)

// Parse converts the textual TCA form into a Rule:
//
//	NAME: WHEN dev.attr=value [IF cond [AND cond ...]] THEN action [AND action ...]
//
// where cond is dev.attr=value or NOT dev.attr=value, and action is either
// dev.attr=value (a command) or NOTIFY "message". Examples:
//
//	lock-up: WHEN P1.presence=away IF LK1.lock=unlocked THEN LK1.lock=locked
//	alert:   WHEN SD1.smoke=detected THEN NOTIFY "smoke!" AND V1.valve=closed
//
// The trigger value may be * to match any change.
func Parse(s string) (Rule, error) {
	var r Rule
	name, rest, ok := strings.Cut(s, ":")
	if !ok {
		return r, fmt.Errorf("rules: missing name separator ':' in %q", s)
	}
	r.Name = strings.TrimSpace(name)

	rest = strings.TrimSpace(rest)
	if !hasPrefixFold(rest, "WHEN ") {
		return r, fmt.Errorf("rules: rule %q must start with WHEN", r.Name)
	}
	rest = rest[len("WHEN "):]

	// Split off THEN first (IF is optional).
	condAndTrigger, actionsText, ok := cutFold(rest, " THEN ")
	if !ok {
		return r, fmt.Errorf("rules: rule %q has no THEN clause", r.Name)
	}
	triggerText := condAndTrigger
	if before, condText, hasIf := cutFold(condAndTrigger, " IF "); hasIf {
		triggerText = before
		cond, err := parseConditions(condText)
		if err != nil {
			return r, fmt.Errorf("rules: rule %q: %w", r.Name, err)
		}
		r.Condition = cond
	}

	trig, err := parseAssignment(strings.TrimSpace(triggerText))
	if err != nil {
		return r, fmt.Errorf("rules: rule %q trigger: %w", r.Name, err)
	}
	r.Trigger = Trigger{Device: trig.device, Attribute: trig.attribute, Value: trig.value}
	if r.Trigger.Value == "*" {
		r.Trigger.Value = ""
	}

	for _, part := range splitFold(actionsText, " AND ") {
		a, err := parseAction(strings.TrimSpace(part))
		if err != nil {
			return r, fmt.Errorf("rules: rule %q action: %w", r.Name, err)
		}
		r.Actions = append(r.Actions, a)
	}
	if err := r.Validate(); err != nil {
		return r, err
	}
	return r, nil
}

// MustParse is Parse for fixtures; it panics on error.
func MustParse(s string) Rule {
	r, err := Parse(s)
	if err != nil {
		panic(err)
	}
	return r
}

type assignment struct {
	device    string
	attribute string
	value     string
}

func parseAssignment(s string) (assignment, error) {
	var a assignment
	devAttr, value, ok := strings.Cut(s, "=")
	if !ok {
		return a, fmt.Errorf("%q is not dev.attr=value", s)
	}
	dev, attr, ok := strings.Cut(strings.TrimSpace(devAttr), ".")
	if !ok || dev == "" || attr == "" {
		return a, fmt.Errorf("%q is not dev.attr=value", s)
	}
	a.device = strings.TrimSpace(dev)
	a.attribute = strings.TrimSpace(attr)
	a.value = strings.TrimSpace(value)
	if a.value == "" {
		return a, fmt.Errorf("%q has an empty value", s)
	}
	return a, nil
}

func parseConditions(s string) (Condition, error) {
	parts := splitFold(s, " AND ")
	conds := make([]Condition, 0, len(parts))
	for _, part := range parts {
		part = strings.TrimSpace(part)
		negated := false
		if hasPrefixFold(part, "NOT ") {
			negated = true
			part = strings.TrimSpace(part[len("NOT "):])
		}
		a, err := parseAssignment(part)
		if err != nil {
			return nil, err
		}
		var c Condition = Eq{Device: a.device, Attribute: a.attribute, Value: a.value}
		if negated {
			c = Not{C: c}
		}
		conds = append(conds, c)
	}
	if len(conds) == 1 {
		return conds[0], nil
	}
	return And(conds), nil
}

func parseAction(s string) (Action, error) {
	if hasPrefixFold(s, "NOTIFY ") {
		msg := strings.TrimSpace(s[len("NOTIFY "):])
		msg = strings.Trim(msg, `"`)
		if msg == "" {
			return Action{}, fmt.Errorf("empty NOTIFY message")
		}
		return Action{Kind: ActionNotify, Message: msg}, nil
	}
	a, err := parseAssignment(s)
	if err != nil {
		return Action{}, err
	}
	return Action{Kind: ActionCommand, Device: a.device, Attribute: a.attribute, Value: a.value}, nil
}

func hasPrefixFold(s, prefix string) bool {
	return len(s) >= len(prefix) && strings.EqualFold(s[:len(prefix)], prefix)
}

// cutFold is strings.Cut with a case-insensitive separator.
func cutFold(s, sep string) (before, after string, found bool) {
	idx := indexFold(s, sep)
	if idx < 0 {
		return s, "", false
	}
	return s[:idx], s[idx+len(sep):], true
}

func splitFold(s, sep string) []string {
	var out []string
	for {
		before, after, found := cutFold(s, sep)
		out = append(out, before)
		if !found {
			return out
		}
		s = after
	}
}

func indexFold(s, sub string) int {
	for i := 0; i+len(sub) <= len(s); i++ {
		if strings.EqualFold(s[i:i+len(sub)], sub) {
			return i
		}
	}
	return -1
}
