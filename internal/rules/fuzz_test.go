package rules

import "testing"

// FuzzParse: arbitrary rule text must never panic, and every accepted rule
// must validate.
func FuzzParse(f *testing.F) {
	f.Add(`r: WHEN A.b=c THEN D.e=f`)
	f.Add(`r: WHEN A.b=* IF X.y=z AND NOT P.q=r THEN NOTIFY "m" AND D.e=f`)
	f.Add(`garbage`)
	f.Add(`: WHEN . THEN`)
	f.Fuzz(func(t *testing.T, s string) {
		r, err := Parse(s)
		if err != nil {
			return
		}
		if err := r.Validate(); err != nil {
			t.Fatalf("accepted rule fails validation: %v (%q)", err, s)
		}
	})
}
