// Package rules implements the trigger-condition-action (TCA) automation
// model IoT platforms execute (Section II-B of the paper): when the
// trigger event is received, if the condition evaluates true against the
// server's view of device states, the actions run.
//
// The engine evaluates conditions against *received* state — the
// cyber-world's possibly-stale copy of the physical world. That gap is
// precisely what the Type-III attacks exploit: delaying the event that
// would have flipped a condition makes the server execute (or skip) an
// action against reality.
package rules

import (
	"errors"
	"fmt"
	"strings"

	"repro/internal/simtime"
)

// Event is a device state update as seen by the automation server.
type Event struct {
	Device    string
	Attribute string
	Value     string
	// GeneratedAt is the device-side timestamp carried in the message.
	GeneratedAt simtime.Time
	// ReceivedAt is when the server received it.
	ReceivedAt simtime.Time
}

// String renders the event for traces.
func (e Event) String() string {
	return fmt.Sprintf("%s.%s=%s (gen %v, rcv %v)", e.Device, e.Attribute, e.Value, e.GeneratedAt, e.ReceivedAt)
}

// Trigger matches events that fire a rule. An empty Value matches any
// value change of the attribute.
type Trigger struct {
	Device    string
	Attribute string
	Value     string
}

func (t Trigger) matches(e Event) bool {
	return t.Device == e.Device && t.Attribute == e.Attribute &&
		(t.Value == "" || t.Value == e.Value)
}

// String renders the trigger.
func (t Trigger) String() string {
	v := t.Value
	if v == "" {
		v = "*"
	}
	return fmt.Sprintf("%s.%s=%s", t.Device, t.Attribute, v)
}

// Condition is a boolean predicate over the server's state store.
type Condition interface {
	Eval(s *Store) bool
	String() string
}

// Eq is true when a device attribute currently equals a value.
type Eq struct {
	Device    string
	Attribute string
	Value     string
}

// Eval implements Condition.
func (c Eq) Eval(s *Store) bool {
	v, _, ok := s.Get(c.Device, c.Attribute)
	return ok && v == c.Value
}

// String renders the condition.
func (c Eq) String() string { return fmt.Sprintf("%s.%s==%s", c.Device, c.Attribute, c.Value) }

// Not negates a condition.
type Not struct{ C Condition }

// Eval implements Condition.
func (c Not) Eval(s *Store) bool { return !c.C.Eval(s) }

// String renders the condition.
func (c Not) String() string { return "!(" + c.C.String() + ")" }

// And is true when all children are true.
type And []Condition

// Eval implements Condition.
func (c And) Eval(s *Store) bool {
	for _, sub := range c {
		if !sub.Eval(s) {
			return false
		}
	}
	return true
}

// String renders the condition.
func (c And) String() string { return joinConds([]Condition(c), " && ") }

// Or is true when any child is true.
type Or []Condition

// Eval implements Condition.
func (c Or) Eval(s *Store) bool {
	for _, sub := range c {
		if sub.Eval(s) {
			return true
		}
	}
	return false
}

// String renders the condition.
func (c Or) String() string { return joinConds([]Condition(c), " || ") }

func joinConds(cs []Condition, sep string) string {
	parts := make([]string, len(cs))
	for i, c := range cs {
		parts[i] = c.String()
	}
	return "(" + strings.Join(parts, sep) + ")"
}

// ActionKind distinguishes device commands from user notifications.
type ActionKind int

// Action kinds.
const (
	// ActionCommand drives an actuator.
	ActionCommand ActionKind = iota + 1
	// ActionNotify pushes a message to the user's phone.
	ActionNotify
)

// Action is one rule consequence.
type Action struct {
	Kind ActionKind
	// Device, Attribute and Value describe a command.
	Device    string
	Attribute string
	Value     string
	// Message is the notification text.
	Message string
}

// String renders the action.
func (a Action) String() string {
	if a.Kind == ActionNotify {
		return fmt.Sprintf("notify(%q)", a.Message)
	}
	return fmt.Sprintf("command(%s.%s=%s)", a.Device, a.Attribute, a.Value)
}

// Rule is one TCA automation.
type Rule struct {
	Name      string
	Trigger   Trigger
	Condition Condition // nil means always true
	Actions   []Action
}

// Validate reports structural problems with the rule.
func (r Rule) Validate() error {
	if r.Name == "" {
		return errors.New("rules: rule needs a name")
	}
	if r.Trigger.Device == "" || r.Trigger.Attribute == "" {
		return fmt.Errorf("rules: rule %q has an incomplete trigger", r.Name)
	}
	if len(r.Actions) == 0 {
		return fmt.Errorf("rules: rule %q has no actions", r.Name)
	}
	for _, a := range r.Actions {
		switch a.Kind {
		case ActionCommand:
			if a.Device == "" || a.Attribute == "" {
				return fmt.Errorf("rules: rule %q has an incomplete command action", r.Name)
			}
		case ActionNotify:
			if a.Message == "" {
				return fmt.Errorf("rules: rule %q has an empty notification", r.Name)
			}
		default:
			return fmt.Errorf("rules: rule %q has an unknown action kind", r.Name)
		}
	}
	return nil
}

// Store is the server's view of device states.
type Store struct {
	values map[stateKey]stateEntry
}

type stateKey struct {
	device    string
	attribute string
}

type stateEntry struct {
	value     string
	updatedAt simtime.Time
}

// NewStore creates an empty state store.
func NewStore() *Store {
	return &Store{values: make(map[stateKey]stateEntry)}
}

// Reset empties the store in place.
func (s *Store) Reset() {
	clear(s.values)
}

// Set records a device attribute value.
func (s *Store) Set(device, attribute, value string, at simtime.Time) {
	s.values[stateKey{device, attribute}] = stateEntry{value: value, updatedAt: at}
}

// Get returns the stored value and its update time.
func (s *Store) Get(device, attribute string) (string, simtime.Time, bool) {
	e, ok := s.values[stateKey{device, attribute}]
	return e.value, e.updatedAt, ok
}

// Execution records one fired action.
type Execution struct {
	At     simtime.Time
	Rule   string
	Action Action
	Cause  Event
}

// Engine evaluates rules against incoming events.
type Engine struct {
	clk   *simtime.Clock
	store *Store
	rules []Rule
	trace []Execution

	// Execute dispatches a fired action (send the command, push the
	// notification). Wired by the hosting server.
	Execute func(Action, Event)
}

// NewEngine creates an engine with an empty store.
func NewEngine(clk *simtime.Clock) *Engine {
	return &Engine{clk: clk, store: NewStore()}
}

// Store exposes the engine's state store.
func (e *Engine) Store() *Store { return e.store }

// Reset drops the installed rules, the execution trace and the state
// store's contents, keeping the allocations and the Execute hook. A reset
// engine behaves identically to NewEngine(clk).
func (e *Engine) Reset() {
	clear(e.rules)
	e.rules = e.rules[:0]
	clear(e.trace)
	e.trace = e.trace[:0]
	e.store.Reset()
}

// AddRule validates and installs a rule.
func (e *Engine) AddRule(r Rule) error {
	if err := r.Validate(); err != nil {
		return err
	}
	e.rules = append(e.rules, r)
	return nil
}

// Rules returns the installed rules.
func (e *Engine) Rules() []Rule {
	out := make([]Rule, len(e.rules))
	copy(out, e.rules)
	return out
}

// Trace returns all fired actions so far.
func (e *Engine) Trace() []Execution {
	out := make([]Execution, len(e.trace))
	copy(out, e.trace)
	return out
}

// Executions returns fired actions for one rule.
func (e *Engine) Executions(rule string) []Execution {
	var out []Execution
	for _, x := range e.trace {
		if x.Rule == rule {
			out = append(out, x)
		}
	}
	return out
}

// HandleEvent ingests a device event: the store updates first (the
// platform's view includes the triggering update itself), then every rule
// whose trigger matches evaluates its condition and fires.
func (e *Engine) HandleEvent(ev Event) {
	e.store.Set(ev.Device, ev.Attribute, ev.Value, ev.ReceivedAt)
	for _, r := range e.rules {
		if !r.Trigger.matches(ev) {
			continue
		}
		if r.Condition != nil && !r.Condition.Eval(e.store) {
			continue
		}
		for _, a := range r.Actions {
			e.trace = append(e.trace, Execution{At: e.clk.Now(), Rule: r.Name, Action: a, Cause: ev})
			if e.Execute != nil {
				e.Execute(a, ev)
			}
		}
	}
}
