package rules

import (
	"testing"
	"time"

	"repro/internal/simtime"
)

func ev(device, attr, value string, at simtime.Time) Event {
	return Event{Device: device, Attribute: attr, Value: value, GeneratedAt: at, ReceivedAt: at}
}

func TestTriggerFiresUnconditionalRule(t *testing.T) {
	clk := simtime.NewClock()
	e := NewEngine(clk)
	var fired []Action
	e.Execute = func(a Action, _ Event) { fired = append(fired, a) }
	if err := e.AddRule(Rule{
		Name:    "notify-on-open",
		Trigger: Trigger{Device: "C1", Attribute: "contact", Value: "open"},
		Actions: []Action{{Kind: ActionNotify, Message: "front door opened"}},
	}); err != nil {
		t.Fatal(err)
	}
	e.HandleEvent(ev("C1", "contact", "open", time.Second))
	if len(fired) != 1 || fired[0].Message != "front door opened" {
		t.Fatalf("fired = %v", fired)
	}
}

func TestTriggerValueMustMatch(t *testing.T) {
	e := NewEngine(simtime.NewClock())
	fired := 0
	e.Execute = func(Action, Event) { fired++ }
	_ = e.AddRule(Rule{
		Name:    "r",
		Trigger: Trigger{Device: "C1", Attribute: "contact", Value: "open"},
		Actions: []Action{{Kind: ActionNotify, Message: "m"}},
	})
	e.HandleEvent(ev("C1", "contact", "closed", time.Second))
	e.HandleEvent(ev("C1", "motion", "open", time.Second))
	e.HandleEvent(ev("C2", "contact", "open", time.Second))
	if fired != 0 {
		t.Fatalf("fired = %d, want 0", fired)
	}
}

func TestWildcardTriggerValue(t *testing.T) {
	e := NewEngine(simtime.NewClock())
	fired := 0
	e.Execute = func(Action, Event) { fired++ }
	_ = e.AddRule(Rule{
		Name:    "any-change",
		Trigger: Trigger{Device: "T1", Attribute: "heating"},
		Actions: []Action{{Kind: ActionNotify, Message: "m"}},
	})
	e.HandleEvent(ev("T1", "heating", "on", 0))
	e.HandleEvent(ev("T1", "heating", "off", 0))
	if fired != 2 {
		t.Fatalf("fired = %d, want 2", fired)
	}
}

func TestConditionGatesAction(t *testing.T) {
	e := NewEngine(simtime.NewClock())
	fired := 0
	e.Execute = func(Action, Event) { fired++ }
	// Case 8 shape: when storm door opens, if user present, unlock.
	_ = e.AddRule(Rule{
		Name:      "unlock-when-home",
		Trigger:   Trigger{Device: "S", Attribute: "contact", Value: "open"},
		Condition: Eq{Device: "P1", Attribute: "presence", Value: "present"},
		Actions:   []Action{{Kind: ActionCommand, Device: "LK1", Attribute: "lock", Value: "unlocked"}},
	})
	// Presence unknown: condition false.
	e.HandleEvent(ev("S", "contact", "open", 0))
	if fired != 0 {
		t.Fatal("condition with unknown state should be false")
	}
	e.HandleEvent(ev("P1", "presence", "present", time.Second))
	e.HandleEvent(ev("S", "contact", "open", 2*time.Second))
	if fired != 1 {
		t.Fatalf("fired = %d, want 1", fired)
	}
	e.HandleEvent(ev("P1", "presence", "away", 3*time.Second))
	e.HandleEvent(ev("S", "contact", "open", 4*time.Second))
	if fired != 1 {
		t.Fatalf("fired = %d after presence away, want still 1", fired)
	}
}

func TestStaleConditionIsTheAttackSurface(t *testing.T) {
	// The Type-III mechanism in miniature: the condition reads *received*
	// state, so delaying the presence-off event leaves the condition true.
	e := NewEngine(simtime.NewClock())
	fired := 0
	e.Execute = func(Action, Event) { fired++ }
	_ = e.AddRule(Rule{
		Name:      "unlock-when-home",
		Trigger:   Trigger{Device: "S", Attribute: "contact", Value: "open"},
		Condition: Eq{Device: "P1", Attribute: "presence", Value: "present"},
		Actions:   []Action{{Kind: ActionCommand, Device: "LK1", Attribute: "lock", Value: "unlocked"}},
	})
	e.HandleEvent(ev("P1", "presence", "present", 0))
	// Physically the user left at t=10s, but that event is delayed and the
	// trigger arrives first.
	e.HandleEvent(ev("S", "contact", "open", 12*time.Second))
	if fired != 1 {
		t.Fatal("spurious execution expected: server still believes user is present")
	}
	// The delayed event finally lands; too late.
	e.HandleEvent(Event{Device: "P1", Attribute: "presence", Value: "away", GeneratedAt: 10 * time.Second, ReceivedAt: 40 * time.Second})
	if fired != 1 {
		t.Fatal("late event must not retroactively fire anything")
	}
}

func TestNotCondition(t *testing.T) {
	e := NewEngine(simtime.NewClock())
	fired := 0
	e.Execute = func(Action, Event) { fired++ }
	_ = e.AddRule(Rule{
		Name:      "r",
		Trigger:   Trigger{Device: "M1", Attribute: "motion", Value: "active"},
		Condition: Not{Eq{Device: "P1", Attribute: "presence", Value: "present"}},
		Actions:   []Action{{Kind: ActionNotify, Message: "intruder"}},
	})
	e.HandleEvent(ev("P1", "presence", "present", 0))
	e.HandleEvent(ev("M1", "motion", "active", time.Second))
	if fired != 0 {
		t.Fatal("Not condition should be false while present")
	}
	e.HandleEvent(ev("P1", "presence", "away", 2*time.Second))
	e.HandleEvent(ev("M1", "motion", "active", 3*time.Second))
	if fired != 1 {
		t.Fatalf("fired = %d, want 1", fired)
	}
}

func TestAndOrConditions(t *testing.T) {
	e := NewEngine(simtime.NewClock())
	fired := 0
	e.Execute = func(Action, Event) { fired++ }
	cond := And{
		Eq{Device: "A", Attribute: "x", Value: "1"},
		Or{
			Eq{Device: "B", Attribute: "y", Value: "2"},
			Eq{Device: "C", Attribute: "z", Value: "3"},
		},
	}
	_ = e.AddRule(Rule{
		Name:      "combo",
		Trigger:   Trigger{Device: "T", Attribute: "go", Value: "now"},
		Condition: cond,
		Actions:   []Action{{Kind: ActionNotify, Message: "m"}},
	})
	e.HandleEvent(ev("A", "x", "1", 0))
	e.HandleEvent(ev("T", "go", "now", 0))
	if fired != 0 {
		t.Fatal("Or branch unsatisfied; should not fire")
	}
	e.HandleEvent(ev("C", "z", "3", 0))
	e.HandleEvent(ev("T", "go", "now", 0))
	if fired != 1 {
		t.Fatalf("fired = %d, want 1", fired)
	}
}

func TestTriggerUpdateVisibleToCondition(t *testing.T) {
	// The triggering event's own update is part of the evaluated state.
	e := NewEngine(simtime.NewClock())
	fired := 0
	e.Execute = func(Action, Event) { fired++ }
	_ = e.AddRule(Rule{
		Name:      "self",
		Trigger:   Trigger{Device: "D", Attribute: "a", Value: "v"},
		Condition: Eq{Device: "D", Attribute: "a", Value: "v"},
		Actions:   []Action{{Kind: ActionNotify, Message: "m"}},
	})
	e.HandleEvent(ev("D", "a", "v", 0))
	if fired != 1 {
		t.Fatal("trigger's own update should satisfy the condition")
	}
}

func TestMultipleActions(t *testing.T) {
	e := NewEngine(simtime.NewClock())
	var kinds []ActionKind
	e.Execute = func(a Action, _ Event) { kinds = append(kinds, a.Kind) }
	_ = e.AddRule(Rule{
		Name:    "both",
		Trigger: Trigger{Device: "W1", Attribute: "water", Value: "wet"},
		Actions: []Action{
			{Kind: ActionCommand, Device: "V1", Attribute: "valve", Value: "closed"},
			{Kind: ActionNotify, Message: "leak!"},
		},
	})
	e.HandleEvent(ev("W1", "water", "wet", 0))
	if len(kinds) != 2 || kinds[0] != ActionCommand || kinds[1] != ActionNotify {
		t.Fatalf("kinds = %v", kinds)
	}
}

func TestTraceRecordsExecutions(t *testing.T) {
	clk := simtime.NewClock()
	e := NewEngine(clk)
	_ = e.AddRule(Rule{
		Name:    "r1",
		Trigger: Trigger{Device: "D", Attribute: "a", Value: "v"},
		Actions: []Action{{Kind: ActionNotify, Message: "m"}},
	})
	clk.RunUntil(5 * time.Second)
	e.HandleEvent(ev("D", "a", "v", 5*time.Second))
	tr := e.Trace()
	if len(tr) != 1 || tr[0].Rule != "r1" || tr[0].At != 5*time.Second {
		t.Fatalf("trace = %v", tr)
	}
	if len(e.Executions("r1")) != 1 || len(e.Executions("nope")) != 0 {
		t.Fatal("Executions filter wrong")
	}
}

func TestValidation(t *testing.T) {
	bad := []Rule{
		{},
		{Name: "x"},
		{Name: "x", Trigger: Trigger{Device: "D", Attribute: "a"}},
		{Name: "x", Trigger: Trigger{Device: "D", Attribute: "a"},
			Actions: []Action{{Kind: ActionCommand}}},
		{Name: "x", Trigger: Trigger{Device: "D", Attribute: "a"},
			Actions: []Action{{Kind: ActionNotify}}},
		{Name: "x", Trigger: Trigger{Device: "D", Attribute: "a"},
			Actions: []Action{{}}},
	}
	e := NewEngine(simtime.NewClock())
	for i, r := range bad {
		if err := e.AddRule(r); err == nil {
			t.Fatalf("rule %d should fail validation", i)
		}
	}
	if err := e.AddRule(Rule{
		Name:    "ok",
		Trigger: Trigger{Device: "D", Attribute: "a"},
		Actions: []Action{{Kind: ActionCommand, Device: "X", Attribute: "y", Value: "z"}},
	}); err != nil {
		t.Fatalf("valid rule rejected: %v", err)
	}
}

func TestStoreGetSet(t *testing.T) {
	s := NewStore()
	if _, _, ok := s.Get("D", "a"); ok {
		t.Fatal("empty store should miss")
	}
	s.Set("D", "a", "v", 7*time.Second)
	v, at, ok := s.Get("D", "a")
	if !ok || v != "v" || at != 7*time.Second {
		t.Fatalf("got %v %v %v", v, at, ok)
	}
}

func TestConditionStrings(t *testing.T) {
	c := And{Eq{"A", "x", "1"}, Not{Or{Eq{"B", "y", "2"}}}}
	want := "(A.x==1 && !((B.y==2)))"
	if c.String() != want {
		t.Fatalf("String() = %q, want %q", c.String(), want)
	}
}
