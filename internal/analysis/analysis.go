// Package analysis is a minimal, dependency-free reimplementation of the
// golang.org/x/tools/go/analysis vocabulary: an Analyzer inspects one
// type-checked package through a Pass and reports Diagnostics. Since
// phantomlint v2 the framework is interprocedural: analyzers can declare
// prerequisite analyzers (Requires) and exchange serializable Facts about
// package-level objects and packages, propagated in dependency order by
// the graph runner (graph.go) and across `go vet -vettool` compilation
// units by the fact store's Encode/Decode (facts.go).
//
// The shapes (Analyzer, Pass, Diagnostic, Fact) deliberately mirror
// x/tools so the phantomlint analyzers can be ported to the upstream
// framework by swapping an import path once the module is allowed
// third-party dependencies. Until then everything here builds on the
// standard library's go/ast and go/types alone.
//
// The suite exists to machine-check the reproduction's load-bearing
// conventions (see DESIGN.md §10 and §15):
//
//   - determinism: results are pure functions of (seed, config), so
//     simulation code must never read the wall clock, the global math/rand
//     stream, or emit output in map-iteration order — directly or through
//     any chain of helpers (the taint facts);
//   - zero-tax tracing: obs.Trace emission goes through a handle captured
//     at Instrument time and is nil/Enabled-guarded, so disabled tracing
//     costs nothing on hot paths;
//   - bounded goroutine lifetimes: a spawned worker must not be able to
//     outlive its spawner blocked on a channel nobody will drain.
package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// Analyzer describes one static check: a name, documentation, and a Run
// function applied once per package.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in //lint:allow
	// suppression comments. It must be a valid identifier.
	Name string
	// Doc is the one-paragraph description shown by `phantomlint -list`.
	Doc string
	// Run inspects the package behind pass and reports findings through
	// pass.Report. The interface{} result mirrors x/tools (analyzers there
	// can return values consumed via Requires); phantomlint analyzers
	// communicate through facts instead and return nil.
	Run func(pass *Pass) (interface{}, error)
	// Requires lists analyzers that must run on the same package first —
	// typically fact producers whose summaries this analyzer consumes.
	// The graph runner expands and orders the set automatically.
	Requires []*Analyzer
	// FactTypes declares the fact types this analyzer may export, as
	// nil pointers of the concrete type (e.g. (*FuncTaint)(nil)). Only
	// declared types can be serialized across vettool compilation units.
	FactTypes []Fact
}

// Pass hands one type-checked package to an Analyzer.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info
	// Report delivers one finding. The driver applies //lint:allow
	// suppression before surfacing it.
	Report func(Diagnostic)

	store *Store
	allow allowSet
}

// Reportf reports a finding at pos. It is the analyzers' usual entry point.
func (p *Pass) Reportf(pos token.Pos, msg string) {
	p.Report(Diagnostic{Pos: pos, Message: msg})
}

// Allowed reports whether a //lint:allow comment suppresses the named
// analyzer at pos. Fact producers consult this to treat an explicitly
// suppressed source as sanctioned — a justified //lint:allow is a taint
// sanitizer, not just a silenced diagnostic, so suppressions don't
// cascade findings onto every transitive caller.
func (p *Pass) Allowed(analyzer string, pos token.Pos) bool {
	if p.allow == nil {
		return false
	}
	return p.allow.suppressed(analyzer, p.Fset.Position(pos))
}

// ExportObjectFact attaches f to obj, which must be a package-level
// object (or method) of the package under analysis. The fact becomes
// visible to analyzers of importing packages via ImportObjectFact.
func (p *Pass) ExportObjectFact(obj types.Object, f Fact) {
	if p.store == nil {
		return
	}
	key, ok := ObjectKey(obj)
	if !ok {
		return // local objects cannot carry serializable facts
	}
	if obj.Pkg() == nil || obj.Pkg().Path() != p.Pkg.Path() {
		panic("analysis: ExportObjectFact on object of another package")
	}
	p.store.export(p.Pkg.Path(), key, f)
}

// ImportObjectFact copies the fact of f's concrete type previously
// exported on obj (by any analyzer, in this process or a dependency
// compilation unit) into f, reporting whether one was found.
func (p *Pass) ImportObjectFact(obj types.Object, f Fact) bool {
	if p.store == nil || obj == nil || obj.Pkg() == nil {
		return false
	}
	key, ok := ObjectKey(obj)
	if !ok {
		return false
	}
	return p.store.lookup(obj.Pkg().Path(), key, f)
}

// ExportPackageFact attaches f to the package under analysis.
func (p *Pass) ExportPackageFact(f Fact) {
	if p.store == nil {
		return
	}
	p.store.export(p.Pkg.Path(), "", f)
}

// ImportPackageFact copies the package fact of f's concrete type
// previously exported on pkg into f, reporting whether one was found.
func (p *Pass) ImportPackageFact(pkg *types.Package, f Fact) bool {
	if p.store == nil || pkg == nil {
		return false
	}
	return p.store.lookup(pkg.Path(), "", f)
}

// Diagnostic is one finding: a position and a message.
type Diagnostic struct {
	Pos     token.Pos
	Message string
}

// A Finding is a diagnostic resolved against its package and analyzer —
// what the driver prints and what analysistest compares against
// expectations.
type Finding struct {
	Analyzer string
	Pos      token.Position
	Message  string
	// Suppressed marks a finding silenced by a //lint:allow comment.
	// Run and the text drivers drop suppressed findings; the -json
	// output retains them flagged, so tooling can audit suppressions.
	Suppressed bool
}

// Package is one loaded, type-checked package as produced by the load
// subpackage (or synthesized by analysistest from a fixture directory).
type Package struct {
	ImportPath string
	Fset       *token.FileSet
	Files      []*ast.File
	Pkg        *types.Package
	TypesInfo  *types.Info
}

// Run applies each analyzer to each package in dependency order and
// returns the surviving findings ordered by file, line, column, then
// analyzer name. Findings suppressed by a //lint:allow comment (see
// suppress.go) are dropped here, so every driver — phantomlint, the
// vettool mode, analysistest — shares one suppression semantics. It is
// the serial convenience form of RunGraph.
func Run(pkgs []*Package, analyzers []*Analyzer) ([]Finding, error) {
	findings, _, err := RunGraph(pkgs, analyzers, GraphOptions{})
	return findings, err
}

func sortFindings(fs []Finding) {
	sort.Slice(fs, func(i, j int) bool { return findingLess(fs[i], fs[j]) })
}

func findingLess(a, b Finding) bool {
	if a.Pos.Filename != b.Pos.Filename {
		return a.Pos.Filename < b.Pos.Filename
	}
	if a.Pos.Line != b.Pos.Line {
		return a.Pos.Line < b.Pos.Line
	}
	if a.Pos.Column != b.Pos.Column {
		return a.Pos.Column < b.Pos.Column
	}
	return a.Analyzer < b.Analyzer
}
