// Package analysis is a minimal, dependency-free reimplementation of the
// golang.org/x/tools/go/analysis vocabulary: an Analyzer inspects one
// type-checked package through a Pass and reports Diagnostics.
//
// The shapes (Analyzer, Pass, Diagnostic) deliberately mirror x/tools so
// the phantomlint analyzers can be ported to the upstream framework by
// swapping an import path once the module is allowed third-party
// dependencies. Until then everything here builds on the standard
// library's go/ast and go/types alone.
//
// The suite exists to machine-check the reproduction's two load-bearing
// conventions (see DESIGN.md §10):
//
//   - determinism: results are pure functions of (seed, config), so
//     simulation code must never read the wall clock, the global math/rand
//     stream, or emit output in map-iteration order;
//   - zero-tax tracing: obs.Trace emission goes through a handle captured
//     at Instrument time and is nil/Enabled-guarded, so disabled tracing
//     costs nothing on hot paths.
package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// Analyzer describes one static check: a name, documentation, and a Run
// function applied once per package.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in //lint:allow
	// suppression comments. It must be a valid identifier.
	Name string
	// Doc is the one-paragraph description shown by `phantomlint -list`.
	Doc string
	// Run inspects the package behind pass and reports findings through
	// pass.Report. The interface{} result mirrors x/tools (analyzers there
	// can return facts); phantomlint analyzers return nil.
	Run func(pass *Pass) (interface{}, error)
}

// Pass hands one type-checked package to an Analyzer.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info
	// Report delivers one finding. The driver applies //lint:allow
	// suppression before surfacing it.
	Report func(Diagnostic)
}

// Reportf reports a finding at pos. It is the analyzers' usual entry point.
func (p *Pass) Reportf(pos token.Pos, msg string) {
	p.Report(Diagnostic{Pos: pos, Message: msg})
}

// Diagnostic is one finding: a position and a message.
type Diagnostic struct {
	Pos     token.Pos
	Message string
}

// A Finding is a diagnostic resolved against its package and analyzer —
// what the driver prints and what analysistest compares against
// expectations.
type Finding struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

// Package is one loaded, type-checked package as produced by the load
// subpackage (or synthesized by analysistest from a fixture directory).
type Package struct {
	ImportPath string
	Fset       *token.FileSet
	Files      []*ast.File
	Pkg        *types.Package
	TypesInfo  *types.Info
}

// Run applies each analyzer to each package and returns the surviving
// findings ordered by file, line, column, then analyzer name. Findings
// suppressed by a //lint:allow comment (see suppress.go) are dropped here,
// so every driver — phantomlint, the vettool mode, analysistest — shares
// one suppression semantics.
func Run(pkgs []*Package, analyzers []*Analyzer) ([]Finding, error) {
	var out []Finding
	for _, pkg := range pkgs {
		allow := collectAllows(pkg.Fset, pkg.Files)
		for _, a := range analyzers {
			pass := &Pass{
				Analyzer:  a,
				Fset:      pkg.Fset,
				Files:     pkg.Files,
				Pkg:       pkg.Pkg,
				TypesInfo: pkg.TypesInfo,
			}
			pass.Report = func(d Diagnostic) {
				posn := pkg.Fset.Position(d.Pos)
				if allow.suppressed(a.Name, posn) {
					return
				}
				out = append(out, Finding{Analyzer: a.Name, Pos: posn, Message: d.Message})
			}
			if _, err := a.Run(pass); err != nil {
				return nil, err
			}
		}
	}
	sortFindings(out)
	return out, nil
}

func sortFindings(fs []Finding) {
	sort.Slice(fs, func(i, j int) bool { return findingLess(fs[i], fs[j]) })
}

func findingLess(a, b Finding) bool {
	if a.Pos.Filename != b.Pos.Filename {
		return a.Pos.Filename < b.Pos.Filename
	}
	if a.Pos.Line != b.Pos.Line {
		return a.Pos.Line < b.Pos.Line
	}
	if a.Pos.Column != b.Pos.Column {
		return a.Pos.Column < b.Pos.Column
	}
	return a.Analyzer < b.Analyzer
}
