// Package mapfix exercises the maporder analyzer: ordered sinks fed in
// map-iteration order are findings; commutative writes and the
// collect-then-sort idiom are not.
package mapfix

import (
	"bytes"
	"fmt"
	"io"
	"slices"
	"sort"
	"strings"

	"repro/internal/obs"
)

// Bad: keys accumulate in random order and are returned unsorted.
func unsortedKeys(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k) // want `out accumulates map keys/values in nondeterministic order`
	}
	return out
}

// Good: the sanctioned collect-then-sort idiom.
func sortedKeys(m map[string]int) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Good: slices.Sort also counts as the later sort.
func sortedValues(m map[string]int) []int {
	var vals []int
	for _, v := range m {
		vals = append(vals, v)
	}
	slices.Sort(vals)
	return vals
}

// Bad: direct writes into ordered sinks inside the loop.
func orderedWrites(m map[string]int, w io.Writer) string {
	var b strings.Builder
	var buf bytes.Buffer
	for k, v := range m {
		fmt.Fprintf(w, "%s=%d\n", k, v) // want `fmt\.Fprintf inside range over map`
		b.WriteString(k)                // want `strings\.Builder\.WriteString inside range over map`
		buf.WriteByte(byte(v))          // want `bytes\.Buffer\.WriteByte inside range over map`
	}
	return b.String()
}

// Bad: trace events are ordered output (the flight recorder replays them).
func traceEmit(m map[string]int, tr *obs.Trace) {
	for k, v := range m {
		if tr != nil {
			tr.Emit(0, "fix", "ev", k, int64(v)) // want `obs\.Trace\.Emit inside range over map`
		}
	}
}

// Bad: channel sends deliver in random order.
func chanSend(m map[string]int, ch chan string) {
	for k := range m {
		ch <- k // want `channel send inside range over map`
	}
}

// Good: commutative writes — map inserts, deletes, counter bumps.
func commutative(m map[string]int, other map[string]int, c *obs.Counter) {
	byLen := make(map[int][]string)
	for k, v := range m {
		other[k] = v
		byLen[len(k)] = append(byLen[len(k)], k)
		delete(m, k)
		c.Add(uint64(v))
	}
}

// Good: a pure reduction with explicit tie-breaking is order-independent.
func reduction(m map[string]int) string {
	best, bestN := "", -1
	for k, v := range m {
		if v > bestN || (v == bestN && k < best) {
			best, bestN = k, v
		}
	}
	return best
}

// snapshot mimics the obs.Snapshot container-sort idiom.
type snapshot struct{ Names []string }

func (s *snapshot) sort() { sort.Strings(s.Names) }

// Good: a sort method on the container covers its accumulated fields.
func containerSort(m map[string]int) snapshot {
	var out snapshot
	for k := range m {
		out.Names = append(out.Names, k)
	}
	out.sort()
	return out
}

// Good: justified suppression.
func suppressed(m map[string]int) []string {
	var out []string
	for k := range m {
		//lint:allow maporder -- fixture demonstrates suppression
		out = append(out, k)
	}
	return out
}
