// Package maporder flags map iteration that feeds order-sensitive output.
//
// Go randomizes map iteration order per range statement, so any loop that
// ranges over a map and writes to an ordered sink — appends to a slice
// that is never sorted, writes into a strings.Builder/bytes.Buffer or an
// io.Writer via fmt.Fprint*, encodes JSON, emits obs.Trace events, or
// sends on a channel — produces different bytes on different runs. This is
// exactly the bug class behind the PR 2 testbed-startup nondeterminism
// (construction iterated a map) and the sniff.Capture.Flows ordering fixed
// alongside this analyzer.
//
// Commutative writes are deliberately not sinks: assigning into another
// map, deleting keys, stopping timers, bumping obs counters/gauges (which
// sum), or pure reductions with explicit tie-breaking all yield the same
// result whatever the visit order.
//
// The sanctioned collect-then-sort idiom is recognized: a loop whose only
// sink is appending to a slice is clean if that slice is passed to a
// sort.* or slices.Sort* call later in the same function.
package maporder

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"repro/internal/analysis"
	"repro/internal/analysis/astq"
)

// Analyzer is the maporder check.
var Analyzer = &analysis.Analyzer{
	Name: "maporder",
	Doc: "flag range-over-map loops whose body feeds ordered output " +
		"(slice appends without a later sort, builder/encoder writes, obs trace events, channel sends)",
	Run: run,
}

// sortFuncs are the sort.* / slices.* entry points that launder a
// map-order-filled slice into deterministic output.
var sortFuncs = map[string]map[string]bool{
	"sort": {
		"Sort": true, "Stable": true, "Strings": true, "Ints": true,
		"Float64s": true, "Slice": true, "SliceStable": true,
	},
	"slices": {
		"Sort": true, "SortFunc": true, "SortStableFunc": true,
	},
}

func run(pass *analysis.Pass) (interface{}, error) {
	for _, f := range pass.Files {
		astq.WalkStack(f, func(n ast.Node, stack []ast.Node) bool {
			rng, ok := n.(*ast.RangeStmt)
			if !ok || !rangesOverMap(pass.TypesInfo, rng) {
				return true
			}
			checkRange(pass, rng, astq.EnclosingFunc(stack))
			return true
		})
	}
	return nil, nil
}

func rangesOverMap(info *types.Info, rng *ast.RangeStmt) bool {
	tv, ok := info.Types[rng.X]
	if !ok {
		return false
	}
	_, isMap := tv.Type.Underlying().(*types.Map)
	return isMap
}

// deferredSink is one `s = append(s, ...)` found in a map-range body,
// keyed by the rendered LHS expression.
type deferredSink struct {
	pos  token.Pos
	text string
}

func checkRange(pass *analysis.Pass, rng *ast.RangeStmt, fnBody *ast.BlockStmt) {
	var deferred []deferredSink
	seen := map[string]bool{}

	ast.Inspect(rng.Body, func(n ast.Node) bool {
		switch s := n.(type) {
		case *ast.AssignStmt:
			for i, rhs := range s.Rhs {
				call, ok := ast.Unparen(rhs).(*ast.CallExpr)
				if !ok || !isAppend(pass.TypesInfo, call) || i >= len(s.Lhs) {
					continue
				}
				lhs := s.Lhs[i]
				// Appending into a map element (m[k] = append(m[k], ...))
				// is a keyed, commutative write, not ordered output.
				if idx, ok := ast.Unparen(lhs).(*ast.IndexExpr); ok {
					if tv, ok := pass.TypesInfo.Types[idx.X]; ok {
						if _, isMap := tv.Type.Underlying().(*types.Map); isMap {
							continue
						}
					}
				}
				text := types.ExprString(lhs)
				if !seen[text] {
					seen[text] = true
					deferred = append(deferred, deferredSink{pos: s.Pos(), text: text})
				}
			}
		case *ast.SendStmt:
			pass.Reportf(s.Pos(),
				"channel send inside range over map delivers values in nondeterministic order; iterate sorted keys")
		case *ast.CallExpr:
			if desc := orderedWriteDesc(pass.TypesInfo, s); desc != "" {
				pass.Reportf(s.Pos(), fmt.Sprintf(
					"%s inside range over map emits output in nondeterministic order; iterate sorted keys", desc))
			}
		}
		return true
	})

	for _, d := range deferred {
		if fnBody != nil && sortedLater(pass.TypesInfo, fnBody, rng.End(), d.text) {
			continue
		}
		pass.Reportf(d.pos, fmt.Sprintf(
			"%s accumulates map keys/values in nondeterministic order and is never sorted in this function; "+
				"sort it (or iterate sorted keys) before it reaches ordered output", d.text))
	}
}

func isAppend(info *types.Info, call *ast.CallExpr) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok {
		return false
	}
	b, ok := info.Uses[id].(*types.Builtin)
	return ok && b.Name() == "append"
}

// orderedWriteDesc classifies a call inside a map-range body as an ordered
// write, returning a human description, or "" when the call is harmless.
func orderedWriteDesc(info *types.Info, call *ast.CallExpr) string {
	fn := astq.CalleeFunc(info, call)
	if fn == nil {
		return ""
	}
	if fn.Pkg() != nil && fn.Pkg().Path() == "fmt" && strings.HasPrefix(fn.Name(), "Fprint") {
		return "fmt." + fn.Name()
	}
	if astq.IsPkgFunc(fn, "io", "WriteString") {
		return "io.WriteString"
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return ""
	}
	switch {
	case astq.NamedTypeIs(sig.Recv().Type(), "strings", "Builder") && strings.HasPrefix(fn.Name(), "Write"):
		return "strings.Builder." + fn.Name()
	case astq.NamedTypeIs(sig.Recv().Type(), "bytes", "Buffer") && strings.HasPrefix(fn.Name(), "Write"):
		return "bytes.Buffer." + fn.Name()
	case astq.NamedTypeIs(sig.Recv().Type(), "encoding/json", "Encoder") && fn.Name() == "Encode":
		return "json.Encoder.Encode"
	case astq.NamedTypeIs(sig.Recv().Type(), "repro/internal/obs", "Trace") &&
		(fn.Name() == "Emit" || fn.Name() == "Add"):
		return "obs.Trace." + fn.Name()
	}
	return ""
}

// sortedLater reports whether a sort.*/slices.Sort* call after pos in the
// function body mentions sinkText in an argument.
func sortedLater(info *types.Info, body *ast.BlockStmt, pos token.Pos, sinkText string) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < pos {
			return true
		}
		fn := astq.CalleeFunc(info, call)
		if fn == nil || fn.Pkg() == nil {
			return true
		}
		// A sort/Sort method invoked on the sink itself or on a container
		// the sink is a field of (`out.sort()` covering `out.Counters`)
		// also launders the order.
		if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
			if fn.Name() == "sort" || fn.Name() == "Sort" {
				recv := types.ExprString(sel.X)
				if recv == sinkText || strings.HasPrefix(sinkText, recv+".") {
					found = true
					return false
				}
			}
		}
		names := sortFuncs[fn.Pkg().Path()]
		if names == nil || !names[fn.Name()] {
			return true
		}
		for _, arg := range call.Args {
			if strings.Contains(types.ExprString(arg), sinkText) {
				found = true
				return false
			}
		}
		return true
	})
	return found
}
