// Package taint computes interprocedural nondeterminism summaries: for
// every function in an analyzed package, which scheduler- or
// wall-clock-dependent sources its call tree can reach. The summaries
// are exported as object facts (analysis.Fact) keyed by package path and
// function, so they propagate across package boundaries inside one
// phantomlint process and across `go vet -vettool` compilation units via
// the serialized fact store — this is what lets a sim package calling an
// innocent-looking helper three packages away be flagged at the call
// site (detflow) instead of slipping through, the exact shape of the
// PR 7 ecdh GenerateKey laundering.
//
// The taint lattice is a set of source kinds per function (DESIGN.md
// §15): wallclock (time.Now and friends), globalrand (the shared
// math/rand stream), cryptorand (crypto/rand's process-entropy reader),
// keygen (crypto GenerateKey's randutil.MaybeReadByte draw), mapiter
// (order-leaking map iteration APIs: maps.Keys/Values/All iterators,
// reflect MapKeys/MapRange), and goorder (multi-case selects, whose
// chosen arm depends on goroutine completion order). Merging is set
// union; each kind carries one representative call chain for the
// diagnostic. Sources suppressed with //lint:allow simdeterminism (or
// detflow) are sanitizers: the justification covers the callers too, so
// the summary stays clean and suppressions don't cascade.
//
// The seam for code that must touch both sides of the sim/wall-time
// boundary — the future netsim live bridge — is explicit: a function
// marked `//lint:bridge detflow -- reason` (or any function in a package
// listed in BridgePackages) exports no taint, and detflow skips call
// sites inside it. The bridge is a charter, not a loophole: the
// directive needs a named analyzer and a reason, same as //lint:allow.
package taint

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strconv"
	"strings"

	"repro/internal/analysis"
	"repro/internal/analysis/astq"
)

// Kind is one nondeterminism source class in the taint lattice.
type Kind string

const (
	Wallclock  Kind = "wallclock"
	GlobalRand Kind = "globalrand"
	CryptoRand Kind = "cryptorand"
	Keygen     Kind = "keygen"
	MapIter    Kind = "mapiter"
	GoOrder    Kind = "goorder"
)

// Source is one reached nondeterminism source: its kind and a
// representative call chain ending at the root (e.g.
// "keyhelp.newKey → ecdh.GenerateKey").
type Source struct {
	Kind  Kind   `json:"kind"`
	Chain string `json:"chain"`
}

// FuncTaint is the object fact exported for every function whose call
// tree reaches at least one nondeterminism source. Sources are sorted by
// kind for deterministic serialization.
type FuncTaint struct {
	Sources []Source `json:"sources"`
}

// AFact marks FuncTaint as a serializable analysis fact.
func (*FuncTaint) AFact() {}

// Kinds returns the fact's kinds in sorted order.
func (t *FuncTaint) Kinds() []Kind {
	out := make([]Kind, len(t.Sources))
	for i, s := range t.Sources {
		out[i] = s.Kind
	}
	return out
}

// WallClockFuncs are package time functions that read or wait on the
// real clock. time.Since/Until are included: both call time.Now.
var WallClockFuncs = map[string]bool{
	"Now":       true,
	"Sleep":     true,
	"After":     true,
	"AfterFunc": true,
	"NewTimer":  true,
	"NewTicker": true,
	"Tick":      true,
	"Since":     true,
	"Until":     true,
}

// GlobalRandFuncs are the package-level math/rand (and math/rand/v2)
// functions that draw from the shared global stream. Constructors
// (New, NewSource, NewPCG, NewChaCha8, NewZipf) and methods on an
// explicit *rand.Rand are fine — those are exactly what seeded
// simulation randomness uses.
var GlobalRandFuncs = map[string]bool{
	"Int": true, "Intn": true, "Int31": true, "Int31n": true,
	"Int32": true, "Int32N": true, "Int63": true, "Int63n": true,
	"Int64": true, "Int64N": true, "IntN": true, "N": true,
	"Uint": true, "Uint32": true, "Uint32N": true, "Uint64": true,
	"Uint64N": true, "UintN": true,
	"Float32": true, "Float64": true, "ExpFloat64": true, "NormFloat64": true,
	"Perm": true, "Shuffle": true, "Read": true, "Seed": true,
}

// CryptoKeygenPkgs are crypto packages whose GenerateKey draws a
// scheduler-dependent number of bytes from the caller's io.Reader:
// randutil.MaybeReadByte consumes one extra byte on a runtime coin-flip,
// so a deterministic reader no longer yields deterministic keys — and
// every later draw from the same source shifts with it.
var CryptoKeygenPkgs = map[string]bool{
	"crypto/ecdh":  true,
	"crypto/ecdsa": true,
	"crypto/rsa":   true,
	"crypto/dsa":   true,
}

// CryptoRandFuncs are crypto/rand package functions (plus the Reader
// variable) that draw from process entropy — never reproducible from a
// seed.
var CryptoRandFuncs = map[string]bool{
	"Read": true, "Int": true, "Prime": true, "Text": true, "Reader": true,
}

// mapIterFuncs are the stdlib maps-package iterators that yield in map
// order; reflect's MapKeys/MapRange methods are caught separately.
var mapIterFuncs = map[string]bool{
	"Keys": true, "Values": true, "All": true,
}

// BridgePackages lists package paths whose functions are sanctioned
// sim/wall-time bridges: their taint is contained by charter, reviewed
// at the package level rather than per call chain. Reserved for the
// ROADMAP honeypot/live-endpoint bridge; empty today.
var BridgePackages = map[string]bool{}

// Summaries is the fact-producing analyzer. It reports nothing itself;
// detflow and the upgraded simdeterminism consume its facts via
// Requires.
var Summaries = &analysis.Analyzer{
	Name: "taintsummaries",
	Doc: "compute per-function nondeterminism-source summaries and export them " +
		"as facts for detflow and simdeterminism (no diagnostics of its own)",
	FactTypes: []analysis.Fact{(*FuncTaint)(nil)},
	Run:       run,
}

// maxChainHops caps diagnostic chain growth through deep call stacks.
const maxChainHops = 6

// summary is the in-flight lattice value: kind → representative chain.
type summary map[Kind]string

func run(pass *analysis.Pass) (interface{}, error) {
	// Summaries are computed for the whole repro module — exempt packages
	// included, since that is exactly where laundering helpers hide — but
	// never for stdlib (the standalone driver does not load it, and the
	// vettool must not diverge from the standalone verdicts). Stdlib
	// nondeterminism is covered by the root tables instead.
	if !strings.HasPrefix(pass.Pkg.Path(), "repro/") {
		return nil, nil
	}
	bridged := Bridges(pass.Fset, pass.Files)
	allBridged := BridgePackages[pass.Pkg.Path()]

	type edge struct {
		callee *types.Func
		pos    token.Pos
	}
	var order []*types.Func
	sums := make(map[*types.Func]summary)
	edges := make(map[*types.Func][]edge)

	for _, file := range pass.Files {
		if name := pass.Fset.Position(file.Pos()).Filename; strings.HasSuffix(name, "_test.go") {
			continue
		}
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fn, _ := pass.TypesInfo.Defs[fd.Name].(*types.Func)
			if fn == nil {
				continue
			}
			if allBridged || bridged[declLine(pass.Fset, fd)] {
				continue // sanctioned bridge: exports no taint
			}
			order = append(order, fn)
			sum := make(summary)
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				if src, ok := DirectSource(pass.TypesInfo, n); ok {
					if !sanctioned(pass, n.Pos()) {
						if _, seen := sum[src.Kind]; !seen {
							sum[src.Kind] = src.Chain
						}
					}
					return true
				}
				if call, ok := n.(*ast.CallExpr); ok {
					if callee := astq.CalleeFunc(pass.TypesInfo, call); callee != nil {
						if !pass.Allowed("detflow", call.Pos()) {
							edges[fn] = append(edges[fn], edge{callee: callee, pos: call.Pos()})
						}
					}
				}
				return true
			})
			sums[fn] = sum
		}
	}

	// Fixpoint over the intra-package call graph. External callees
	// resolve through already-propagated facts (the graph runner
	// guarantees dependencies ran first); same-package callees through
	// the in-flight summaries, iterated until stable to handle any call
	// order and mutual recursion.
	for changed := true; changed; {
		changed = false
		for _, fn := range order {
			mine := sums[fn]
			for _, e := range edges[fn] {
				var calleeSum summary
				if s, ok := sums[e.callee]; ok {
					calleeSum = s
				} else {
					var fact FuncTaint
					if !pass.ImportObjectFact(e.callee, &fact) {
						continue
					}
					calleeSum = make(summary, len(fact.Sources))
					for _, s := range fact.Sources {
						calleeSum[s.Kind] = s.Chain
					}
				}
				for kind, chain := range calleeSum {
					if _, seen := mine[kind]; !seen {
						mine[kind] = ExtendChain(QualifiedName(e.callee), chain)
						changed = true
					}
				}
			}
		}
	}

	for _, fn := range order {
		if sum := sums[fn]; len(sum) > 0 {
			pass.ExportObjectFact(fn, factOf(sum))
		}
	}
	return nil, nil
}

// sanctioned reports whether a direct source at pos carries a
// //lint:allow for either the direct-use analyzer or the taint consumer:
// a justified suppression sanitizes the summary so it does not cascade.
func sanctioned(pass *analysis.Pass, pos token.Pos) bool {
	return pass.Allowed("simdeterminism", pos) || pass.Allowed("detflow", pos)
}

// DirectSource reports the nondeterminism source an AST node references,
// if any: a selector resolving to a root-table function or variable, or
// a multi-case select statement.
func DirectSource(info *types.Info, n ast.Node) (Source, bool) {
	switch n := n.(type) {
	case *ast.SelectStmt:
		if n.Body != nil && len(n.Body.List) >= 2 {
			return Source{Kind: GoOrder, Chain: "multi-case select"}, true
		}
	case *ast.SelectorExpr:
		obj := info.Uses[n.Sel]
		if obj == nil || obj.Pkg() == nil {
			return Source{}, false
		}
		pkgPath, name := obj.Pkg().Path(), obj.Name()
		// Methods checked before the receiver skip: ecdh's GenerateKey is
		// a Curve method, reflect's MapKeys/MapRange are Value methods.
		if name == "GenerateKey" && CryptoKeygenPkgs[pkgPath] {
			return Source{Kind: Keygen, Chain: obj.Pkg().Name() + ".GenerateKey"}, true
		}
		if pkgPath == "reflect" && (name == "MapKeys" || name == "MapRange") {
			return Source{Kind: MapIter, Chain: "reflect.Value." + name}, true
		}
		if sig, ok := obj.Type().(*types.Signature); ok && sig.Recv() != nil {
			return Source{}, false // methods on explicit values are the sanctioned idiom
		}
		switch pkgPath {
		case "time":
			if WallClockFuncs[name] {
				return Source{Kind: Wallclock, Chain: "time." + name}, true
			}
		case "math/rand", "math/rand/v2":
			if GlobalRandFuncs[name] {
				return Source{Kind: GlobalRand, Chain: obj.Pkg().Name() + "." + name}, true
			}
		case "crypto/rand":
			if CryptoRandFuncs[name] {
				return Source{Kind: CryptoRand, Chain: "crypto/rand." + name}, true
			}
		case "maps":
			if mapIterFuncs[name] {
				return Source{Kind: MapIter, Chain: "maps." + name}, true
			}
		}
	}
	return Source{}, false
}

// ExtendChain prefixes one caller hop onto a chain, capping runaway depth.
func ExtendChain(hop, chain string) string {
	if strings.Count(chain, " → ") >= maxChainHops {
		i := strings.LastIndex(chain, " → ")
		chain = chain[:i] + " → …"
	}
	return hop + " → " + chain
}

// factOf converts an in-flight summary to its sorted fact form.
func factOf(sum summary) *FuncTaint {
	fact := &FuncTaint{Sources: make([]Source, 0, len(sum))}
	for kind, chain := range sum {
		fact.Sources = append(fact.Sources, Source{Kind: kind, Chain: chain})
	}
	sort.Slice(fact.Sources, func(i, j int) bool { return fact.Sources[i].Kind < fact.Sources[j].Kind })
	return fact
}

// QualifiedName renders a function for chain display: pkg.Func or
// pkg.Recv.Method.
func QualifiedName(fn *types.Func) string {
	name := fn.Name()
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		t := sig.Recv().Type()
		for {
			if p, ok := t.(*types.Pointer); ok {
				t = p.Elem()
				continue
			}
			break
		}
		if named, ok := t.(*types.Named); ok {
			name = named.Obj().Name() + "." + name
		}
	}
	if fn.Pkg() != nil {
		return fn.Pkg().Name() + "." + name
	}
	return name
}

// bridgePrefix is the function-level bridge directive (see package doc).
const bridgePrefix = "lint:bridge"

// Bridges scans the package's comments for //lint:bridge directives and
// returns the set of lines they grant (the directive's line and the one
// below, mirroring //lint:allow placement): a FuncDecl starting on a
// granted line is a sanctioned bridge. Only directives naming detflow
// count — the syntax requires the analyzer name, like //lint:allow.
func Bridges(fset *token.FileSet, files []*ast.File) map[string]bool {
	granted := make(map[string]bool)
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				body, ok := strings.CutPrefix(c.Text, "//")
				if !ok {
					continue
				}
				body = strings.TrimSpace(body)
				rest, ok := strings.CutPrefix(body, bridgePrefix)
				if !ok || rest == "" || (rest[0] != ' ' && rest[0] != '\t') {
					continue
				}
				rest = strings.TrimSpace(rest)
				if i := strings.Index(rest, "--"); i >= 0 {
					rest = strings.TrimSpace(rest[:i])
				}
				names := strings.Split(rest, ",")
				hit := false
				for _, n := range names {
					if strings.TrimSpace(n) == "detflow" {
						hit = true
					}
				}
				if !hit {
					continue
				}
				pos := fset.Position(c.Pos())
				granted[lineKey(pos.Filename, pos.Line)] = true
				granted[lineKey(pos.Filename, pos.Line+1)] = true
			}
		}
	}
	return granted
}

// declLine keys a FuncDecl by its starting line for bridge lookup.
func declLine(fset *token.FileSet, fd *ast.FuncDecl) string {
	pos := fset.Position(fd.Pos())
	return lineKey(pos.Filename, pos.Line)
}

func lineKey(file string, line int) string {
	return file + ":" + strconv.Itoa(line)
}

// IsBridged reports whether fd is a sanctioned bridge function given the
// package's granted bridge lines (from Bridges) and path.
func IsBridged(fset *token.FileSet, pkgPath string, granted map[string]bool, fd *ast.FuncDecl) bool {
	return BridgePackages[pkgPath] || granted[declLine(fset, fd)]
}
