// Package analysistest runs an analyzer over fixture packages and checks
// its findings against expectations written in the fixtures themselves —
// the same contract as golang.org/x/tools/go/analysis/analysistest,
// rebuilt on the standard library.
//
// Fixtures live under <analyzer>/testdata/src/<import-path>/ and are plain
// Go files excluded from the build by the testdata convention. A line that
// should trigger the analyzer carries a trailing comment:
//
//	time.Sleep(d) // want `wall-clock`
//
// Each backquoted or double-quoted string is a regular expression that
// must match the message of exactly one finding reported on that line;
// findings with no matching expectation, and expectations with no matching
// finding, fail the test. The fixture's import path is its directory path
// relative to testdata/src, which is what lets fixtures exercise
// path-scoped analyzer behavior (e.g. simdeterminism's repro/internal/*
// scope and its cmd/ allowlist).
//
// Interprocedural analyzers need more than one package: list every
// fixture package in dependency order (imported packages first). All
// listed packages are type-checked into one graph — a fixture may import
// an earlier fixture by its testdata import path, or any real package the
// module can resolve — and analyzed with analysis.RunGraph, so facts flow
// from fixture dependencies into fixture dependents exactly as they do in
// the production drivers.
package analysistest

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
	"testing"

	"repro/internal/analysis"
	"repro/internal/analysis/load"
)

// Run analyzes the fixture packages under testdata/src — listed with
// dependencies before dependents — and reports mismatches between
// expected and actual findings as test errors.
func Run(t *testing.T, testdata string, a *analysis.Analyzer, pkgPaths ...string) {
	t.Helper()
	fset := token.NewFileSet()
	imp := &fixtureImporter{
		checked:  make(map[string]*types.Package),
		fallback: importer.ForCompiler(fset, "source", nil),
	}
	var pkgs []*analysis.Package
	var wants []*expectation
	for _, path := range pkgPaths {
		pkg, ws := loadFixture(t, fset, imp, testdata, path)
		imp.checked[path] = pkg.Pkg
		pkgs = append(pkgs, pkg)
		wants = append(wants, ws...)
	}

	findings, _, err := analysis.RunGraph(pkgs, []*analysis.Analyzer{a}, analysis.GraphOptions{})
	if err != nil {
		t.Fatalf("running %s: %v", a.Name, err)
	}

	for _, f := range findings {
		if f.Analyzer != a.Name {
			continue // required fact producers may also report; only the analyzer under test is scored
		}
		if !claim(wants, f) {
			t.Errorf("%s:%d: unexpected %s finding: %s", f.Pos.Filename, f.Pos.Line, a.Name, f.Message)
		}
	}
	sort.Slice(wants, func(i, j int) bool {
		if wants[i].file != wants[j].file {
			return wants[i].file < wants[j].file
		}
		return wants[i].line < wants[j].line
	})
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s:%d: expected finding matching %q, got none", w.file, w.line, w.raw)
		}
	}
}

// fixtureImporter resolves already-type-checked fixture packages first,
// then falls back to the module's source importer for real packages.
// That lets a fixture package import another fixture by its testdata
// path even though no such directory exists in the module proper.
type fixtureImporter struct {
	checked  map[string]*types.Package
	fallback types.Importer
}

func (fi *fixtureImporter) Import(path string) (*types.Package, error) {
	if pkg, ok := fi.checked[path]; ok {
		return pkg, nil
	}
	return fi.fallback.Import(path)
}

// expectation is one want-regexp and whether a finding consumed it.
type expectation struct {
	file    string
	line    int
	re      *regexp.Regexp
	raw     string
	matched bool
}

// loadFixture parses and type-checks one fixture package, returning it
// with the want-expectations harvested from its comments.
func loadFixture(t *testing.T, fset *token.FileSet, imp types.Importer, testdata, pkgPath string) (*analysis.Package, []*expectation) {
	t.Helper()
	dir := filepath.Join(testdata, "src", filepath.FromSlash(pkgPath))
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatalf("%s: reading fixture dir: %v", pkgPath, err)
	}
	var files []*ast.File
	var wants []*expectation
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		fname := filepath.Join(dir, e.Name())
		f, err := parser.ParseFile(fset, fname, nil, parser.ParseComments)
		if err != nil {
			t.Fatalf("%s: %v", pkgPath, err)
		}
		files = append(files, f)
		ws, err := collectWants(fset, f)
		if err != nil {
			t.Fatalf("%s: %v", pkgPath, err)
		}
		wants = append(wants, ws...)
	}
	if len(files) == 0 {
		t.Fatalf("%s: fixture dir %s has no Go files", pkgPath, dir)
	}

	info := load.NewInfo()
	conf := types.Config{Importer: imp}
	tpkg, err := conf.Check(pkgPath, fset, files, info)
	if err != nil {
		t.Fatalf("%s: type-checking fixture: %v", pkgPath, err)
	}
	return &analysis.Package{ImportPath: pkgPath, Fset: fset, Files: files, Pkg: tpkg, TypesInfo: info}, wants
}

// claim marks the first unmatched expectation on the finding's line whose
// regexp matches the message.
func claim(wants []*expectation, f analysis.Finding) bool {
	for _, w := range wants {
		if w.matched || w.file != f.Pos.Filename || w.line != f.Pos.Line {
			continue
		}
		if w.re.MatchString(f.Message) {
			w.matched = true
			return true
		}
	}
	return false
}

// collectWants extracts `// want ...` expectations from one file.
func collectWants(fset *token.FileSet, f *ast.File) ([]*expectation, error) {
	var out []*expectation
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			body, ok := strings.CutPrefix(c.Text, "//")
			if !ok {
				continue
			}
			body = strings.TrimSpace(body)
			rest, ok := strings.CutPrefix(body, "want ")
			if !ok {
				continue
			}
			pos := fset.Position(c.Pos())
			pats, err := splitPatterns(rest)
			if err != nil {
				return nil, fmt.Errorf("%s:%d: bad want comment: %v", pos.Filename, pos.Line, err)
			}
			for _, p := range pats {
				re, err := regexp.Compile(p)
				if err != nil {
					return nil, fmt.Errorf("%s:%d: bad want regexp %q: %v", pos.Filename, pos.Line, p, err)
				}
				out = append(out, &expectation{file: pos.Filename, line: pos.Line, re: re, raw: p})
			}
		}
	}
	return out, nil
}

// splitPatterns parses a want payload: one or more strings, each either
// backquoted or double-quoted, separated by spaces.
func splitPatterns(s string) ([]string, error) {
	var out []string
	s = strings.TrimSpace(s)
	for s != "" {
		var quote byte = s[0]
		if quote != '`' && quote != '"' {
			return nil, fmt.Errorf("expected quoted regexp at %q", s)
		}
		end := strings.IndexByte(s[1:], quote)
		if end < 0 {
			return nil, fmt.Errorf("unterminated pattern %q", s)
		}
		out = append(out, s[1:1+end])
		s = strings.TrimSpace(s[2+end:])
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("empty want comment")
	}
	return out, nil
}
