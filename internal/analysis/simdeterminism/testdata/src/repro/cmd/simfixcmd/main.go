// Package main exercises the simdeterminism allowlist: cmd/* binaries
// may read real time (progress meters, ETAs) without findings.
package main

import "time"

func main() {
	start := time.Now()
	time.Sleep(time.Millisecond)
	_ = time.Since(start)
}
