// Package simfix exercises the simdeterminism analyzer: wall-clock and
// global-rand escapes are findings; seeded randomness, virtual-time
// arithmetic, and suppressed lines are not.
package simfix

import (
	"crypto/ecdh"
	"crypto/ecdsa"
	"crypto/elliptic"
	"io"
	"math/rand"
	"time"

	"repro/internal/bench/twrap"
)

// Bad: every wall-clock read or wait is a finding.
func wallClock() time.Duration {
	start := time.Now()                 // want `time\.Now reads the wall clock`
	time.Sleep(time.Millisecond)        // want `time\.Sleep reads the wall clock`
	<-time.After(time.Millisecond)      // want `time\.After reads the wall clock`
	t := time.NewTimer(time.Second)     // want `time\.NewTimer reads the wall clock`
	t.Stop()
	_ = time.Tick                       // want `time\.Tick reads the wall clock`
	return time.Since(start)            // want `time\.Since reads the wall clock`
}

// Bad: the global math/rand stream is shared, unseeded state.
func globalRand() int {
	f := rand.Float64() // want `global rand\.Float64 draws from the shared random stream`
	_ = f
	return rand.Intn(10) // want `global rand\.Intn draws from the shared random stream`
}

// Bad: crypto GenerateKey perturbs how many bytes it reads from the
// source (randutil.MaybeReadByte), so a deterministic reader does not
// give deterministic keys — or deterministic later draws.
func cryptoKeygen(r io.Reader) {
	_, _ = ecdh.X25519().GenerateKey(r)                  // want `ecdh\.GenerateKey consumes a scheduler-dependent number of reader bytes`
	_, _ = ecdsa.GenerateKey(elliptic.P256(), r)         // want `ecdsa\.GenerateKey consumes a scheduler-dependent number of reader bytes`
}

// Good: keys built from explicitly drawn bytes are pure in the source.
func cryptoKeyFromBytes(seed [32]byte) {
	_, _ = ecdh.X25519().NewPrivateKey(seed[:])
}

// Good: explicitly seeded sources and virtual-time arithmetic.
func seeded(seed int64) int {
	r := rand.New(rand.NewSource(seed))
	d := 3 * time.Second
	_ = d
	return r.Intn(10)
}

// Good: a justified, narrowly suppressed use.
func suppressed() time.Time {
	//lint:allow simdeterminism -- fixture demonstrates suppression
	return time.Now()
}

// Good: suppression on the same line.
func suppressedSameLine() time.Time {
	return time.Now() //lint:allow simdeterminism -- same-line form
}

// Bad: a suppression naming a different analyzer does not apply.
func wrongSuppression() time.Time {
	//lint:allow maporder -- names the wrong analyzer
	return time.Now() // want `time\.Now reads the wall clock`
}

// Bad: storing a tainted callable smuggles the wall clock past every
// call-site check; the summary fact travels from the exempt bench
// subtree to this reference.
var tickHook = twrap.Tick // want `reference to twrap\.Tick smuggles nondeterminism \(wallclock\) past the call-site checks: time\.Now`

// Calling it is detflow's finding (with the chain), not simdeterminism's.
func callTick() int64 {
	return twrap.Tick()
}
