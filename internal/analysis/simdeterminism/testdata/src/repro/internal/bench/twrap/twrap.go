// Package twrap wraps the wall clock behind a clean-looking signature —
// the simdeterminism fixture's laundering helper. It lives in the exempt
// bench subtree so nothing is reported here; the taint summary computed
// for Tick is what lets simfix flag references to it.
package twrap

import "time"

// Tick reads the wall clock.
func Tick() int64 {
	return time.Now().UnixNano()
}
