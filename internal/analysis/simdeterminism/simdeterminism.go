// Package simdeterminism bans wall-clock and global-randomness escapes
// from simulation code.
//
// Every result in this reproduction — the Table I/II/III numbers, fleet
// checkpoints, Perfetto timelines — must be a pure function of
// (seed, config). That only holds if simulation code reads time from
// simtime.Clock and randomness from an explicitly seeded source. A single
// time.Now() or global rand.Intn() silently re-introduces run-to-run
// variance of exactly the kind that caused the PR 2 testbed-startup
// nondeterminism. This analyzer makes the convention mechanical: inside
// repro/internal/* simulation packages, any reference to a wall-clock
// time function or a global math/rand function is a finding.
//
// Out of scope by design (the allowlist): cmd/* and examples/* (CLI
// progress meters legitimately read real time), repro/internal/bench
// (wall-clock benchmarking harness), repro/internal/analysis/* (the
// linter itself), and _test.go files (tests may use real timeouts; the
// standalone driver does not load them at all).
package simdeterminism

import (
	"fmt"
	"go/ast"
	"go/types"
	"strings"

	"repro/internal/analysis"
)

// Analyzer is the simdeterminism check.
var Analyzer = &analysis.Analyzer{
	Name: "simdeterminism",
	Doc: "ban wall-clock time and global math/rand in simulation packages; " +
		"route time through simtime.Clock and randomness through a seeded source",
	Run: run,
}

// wallClockFuncs are package time functions that read or wait on the real
// clock. Referencing one from simulation code (even without calling it)
// is a finding. time.Since/Until are included: both call time.Now.
var wallClockFuncs = map[string]bool{
	"Now":       true,
	"Sleep":     true,
	"After":     true,
	"AfterFunc": true,
	"NewTimer":  true,
	"NewTicker": true,
	"Tick":      true,
	"Since":     true,
	"Until":     true,
}

// globalRandFuncs are the package-level math/rand (and math/rand/v2)
// functions that draw from the shared global stream. Constructors
// (New, NewSource, NewPCG, NewChaCha8, NewZipf) and methods on an
// explicit *rand.Rand are fine — those are exactly what seeded simulation
// randomness uses.
var globalRandFuncs = map[string]bool{
	"Int": true, "Intn": true, "Int31": true, "Int31n": true,
	"Int32": true, "Int32N": true, "Int63": true, "Int63n": true,
	"Int64": true, "Int64N": true, "IntN": true, "N": true,
	"Uint": true, "Uint32": true, "Uint32N": true, "Uint64": true,
	"Uint64N": true, "UintN": true,
	"Float32": true, "Float64": true, "ExpFloat64": true, "NormFloat64": true,
	"Perm": true, "Shuffle": true, "Read": true, "Seed": true,
}

// cryptoKeygenPkgs are crypto packages whose GenerateKey draws a
// scheduler-dependent number of bytes from the caller's io.Reader:
// randutil.MaybeReadByte consumes one extra byte on a runtime coin-flip,
// so a deterministic reader no longer yields deterministic keys — and
// every later draw from the same source shifts with it. Key and record
// content stays invisible to timing until something (the replay attack)
// re-issues captured bytes as data, which is how this surfaced: build
// keys from explicitly drawn bytes (ecdh.Curve.NewPrivateKey) instead.
var cryptoKeygenPkgs = map[string]bool{
	"crypto/ecdh":  true,
	"crypto/ecdsa": true,
	"crypto/rsa":   true,
	"crypto/dsa":   true,
}

// allowedPrefixes exempt whole package subtrees from the check.
var allowedPrefixes = []string{
	"repro/cmd/",
	"repro/examples/",
	"repro/internal/bench",
	"repro/internal/analysis",
}

// scoped reports whether the analyzer applies to the package at path.
func scoped(path string) bool {
	if !strings.HasPrefix(path, "repro/internal/") {
		return false
	}
	for _, p := range allowedPrefixes {
		if path == strings.TrimSuffix(p, "/") || strings.HasPrefix(path, p) ||
			strings.HasPrefix(path, p+"/") {
			return false
		}
	}
	return true
}

func run(pass *analysis.Pass) (interface{}, error) {
	if !scoped(pass.Pkg.Path()) {
		return nil, nil
	}
	for _, f := range pass.Files {
		// Defensive: the standalone driver never loads _test.go files, but
		// fixture harnesses could.
		if name := pass.Fset.Position(f.Pos()).Filename; strings.HasSuffix(name, "_test.go") {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			obj := pass.TypesInfo.Uses[sel.Sel]
			if obj == nil || obj.Pkg() == nil {
				return true
			}
			// Crypto key generation is checked before the method skip:
			// ecdh's GenerateKey is a method on the Curve interface, while
			// ecdsa/rsa/dsa expose package functions — all read a
			// MaybeReadByte-perturbed number of bytes from their reader.
			if obj.Name() == "GenerateKey" && cryptoKeygenPkgs[obj.Pkg().Path()] {
				pass.Reportf(sel.Pos(), fmt.Sprintf(
					"%s.GenerateKey consumes a scheduler-dependent number of reader bytes (randutil.MaybeReadByte): draw the key bytes from the seeded source and use NewPrivateKey",
					obj.Pkg().Name()))
				return true
			}
			// Methods are fine: r.Intn on a seeded *rand.Rand is exactly
			// the sanctioned idiom. Only package-level functions are
			// wall-clock/global-stream reads.
			if sig, ok := obj.Type().(*types.Signature); ok && sig.Recv() != nil {
				return true
			}
			switch obj.Pkg().Path() {
			case "time":
				if wallClockFuncs[obj.Name()] {
					pass.Reportf(sel.Pos(), fmt.Sprintf(
						"time.%s reads the wall clock: simulation results must be pure in (seed, config); use simtime.Clock",
						obj.Name()))
				}
			case "math/rand", "math/rand/v2":
				if globalRandFuncs[obj.Name()] {
					pass.Reportf(sel.Pos(), fmt.Sprintf(
						"global %s.%s draws from the shared random stream: use a seeded *rand.Rand (simtime.NewRand)",
						obj.Pkg().Name(), obj.Name()))
				}
			}
			return true
		})
	}
	return nil, nil
}
