// Package simdeterminism bans wall-clock and global-randomness escapes
// from simulation code.
//
// Every result in this reproduction — the Table I/II/III numbers, fleet
// checkpoints, Perfetto timelines — must be a pure function of
// (seed, config). That only holds if simulation code reads time from
// simtime.Clock and randomness from an explicitly seeded source. A single
// time.Now() or global rand.Intn() silently re-introduces run-to-run
// variance of exactly the kind that caused the PR 2 testbed-startup
// nondeterminism. This analyzer makes the convention mechanical: inside
// repro/internal/* simulation packages, any reference to a wall-clock
// time function or a global math/rand function is a finding.
//
// Since phantomlint v2 the analyzer also consumes the taint package's
// cross-package summaries: a *value reference* to any function whose call
// tree reaches a nondeterminism source — storing it in a hook field,
// passing it as a callback — is a finding too. Calls are detflow's
// domain (it renders the chain at the call site); references would
// otherwise smuggle a tainted callable past every call-site check and
// fire it later under a clean-looking name.
//
// Out of scope by design (the allowlist): cmd/* and examples/* (CLI
// progress meters legitimately read real time; they are outside
// repro/internal/ by construction), repro/internal/bench (wall-clock
// benchmarking harness), repro/internal/analysis/* (the linter itself),
// and _test.go files (tests may use real timeouts; the standalone driver
// does not load them at all). The scope test lives in simscope, shared
// with detflow and goroutineguard.
package simdeterminism

import (
	"fmt"
	"go/ast"
	"go/types"
	"strings"

	"repro/internal/analysis"
	"repro/internal/analysis/simscope"
	"repro/internal/analysis/taint"
)

// Analyzer is the simdeterminism check.
var Analyzer = &analysis.Analyzer{
	Name: "simdeterminism",
	Doc: "ban wall-clock time and global math/rand in simulation packages; " +
		"route time through simtime.Clock and randomness through a seeded source",
	Requires: []*analysis.Analyzer{taint.Summaries},
	Run:      run,
}

// The root tables moved to the taint package in v2 so the direct check
// here and the summary computation there can never disagree on what a
// source is; these aliases keep this package's vocabulary.
var (
	wallClockFuncs   = taint.WallClockFuncs
	globalRandFuncs  = taint.GlobalRandFuncs
	cryptoKeygenPkgs = taint.CryptoKeygenPkgs
)

func run(pass *analysis.Pass) (interface{}, error) {
	if !simscope.Sim(pass.Pkg.Path()) {
		return nil, nil
	}
	for _, f := range pass.Files {
		// Defensive: the standalone driver never loads _test.go files, but
		// fixture harnesses could.
		if name := pass.Fset.Position(f.Pos()).Filename; strings.HasSuffix(name, "_test.go") {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			obj := pass.TypesInfo.Uses[sel.Sel]
			if obj == nil || obj.Pkg() == nil {
				return true
			}
			// Crypto key generation is checked before the method skip:
			// ecdh's GenerateKey is a method on the Curve interface, while
			// ecdsa/rsa/dsa expose package functions — all read a
			// MaybeReadByte-perturbed number of bytes from their reader.
			if obj.Name() == "GenerateKey" && cryptoKeygenPkgs[obj.Pkg().Path()] {
				pass.Reportf(sel.Pos(), fmt.Sprintf(
					"%s.GenerateKey consumes a scheduler-dependent number of reader bytes (randutil.MaybeReadByte): draw the key bytes from the seeded source and use NewPrivateKey",
					obj.Pkg().Name()))
				return true
			}
			// Methods are fine: r.Intn on a seeded *rand.Rand is exactly
			// the sanctioned idiom. Only package-level functions are
			// wall-clock/global-stream reads.
			if sig, ok := obj.Type().(*types.Signature); ok && sig.Recv() != nil {
				return true
			}
			switch obj.Pkg().Path() {
			case "time":
				if wallClockFuncs[obj.Name()] {
					pass.Reportf(sel.Pos(), fmt.Sprintf(
						"time.%s reads the wall clock: simulation results must be pure in (seed, config); use simtime.Clock",
						obj.Name()))
				}
			case "math/rand", "math/rand/v2":
				if globalRandFuncs[obj.Name()] {
					pass.Reportf(sel.Pos(), fmt.Sprintf(
						"global %s.%s draws from the shared random stream: use a seeded *rand.Rand (simtime.NewRand)",
						obj.Pkg().Name(), obj.Name()))
				}
			}
			return true
		})
		reportTaintedRefs(pass, f)
	}
	return nil, nil
}

// reportTaintedRefs flags value references (non-call uses) of functions
// carrying a taint summary. The called case is deliberately left to
// detflow; this check exists so `hooks.onTick = helper.Stamp` is caught
// at the assignment instead of wherever the hook eventually fires.
func reportTaintedRefs(pass *analysis.Pass, f *ast.File) {
	// Collect the identifiers in call position: f(...) and pkg.f(...).
	called := make(map[*ast.Ident]bool)
	ast.Inspect(f, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		switch fun := ast.Unparen(call.Fun).(type) {
		case *ast.Ident:
			called[fun] = true
		case *ast.SelectorExpr:
			called[fun.Sel] = true
		}
		return true
	})
	ast.Inspect(f, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok || called[id] {
			return true
		}
		fn, ok := pass.TypesInfo.Uses[id].(*types.Func)
		if !ok {
			return true
		}
		var fact taint.FuncTaint
		if !pass.ImportObjectFact(fn, &fact) {
			return true
		}
		kinds := make([]string, len(fact.Sources))
		for i, s := range fact.Sources {
			kinds[i] = string(s.Kind)
		}
		pass.Reportf(id.Pos(), fmt.Sprintf(
			"reference to %s smuggles nondeterminism (%s) past the call-site checks: %s; pass a seeded/simtime-backed implementation instead",
			taint.QualifiedName(fn), strings.Join(kinds, ", "), fact.Sources[0].Chain))
		return true
	})
}
