package simdeterminism_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/simdeterminism"
)

func TestSimDeterminism(t *testing.T) {
	analysistest.Run(t, "testdata", simdeterminism.Analyzer,
		"repro/internal/bench/twrap", // laundering helper: facts only, no findings
		"repro/internal/simfix", // violations, seeded-OK cases, suppressions
		"repro/cmd/simfixcmd",   // allowlisted subtree: no findings expected
	)
}
