// Package simscope answers the one question several phantomlint
// analyzers share: is this package on the simulation side of the
// wall-clock seam? Simulation packages are the ones whose results are
// contractually pure functions of (seed, config) — repro/internal/*
// minus the subtrees that legitimately live on the wall-clock side.
// Keeping the answer in one place keeps simdeterminism, detflow and
// goroutineguard from drifting apart on what "sim code" means.
package simscope

import "strings"

// exemptPrefixes are the repro/internal subtrees that are not simulation
// code: the benchmarking harness reads real time by design, and the
// linter analyzes itself.
var exemptPrefixes = []string{
	"repro/internal/bench",
	"repro/internal/analysis",
}

// Sim reports whether the package at path holds simulation code bound by
// the determinism contract. cmd/* and examples/* own the wall-clock side
// and are out of scope by construction (they are not under
// repro/internal/). Note repro/internal/obs/serve IS in scope here: it
// may link the network (wallclockboundary exempts it by charter) but its
// goroutine discipline and any taint it would launder into sim-visible
// state still matter.
func Sim(path string) bool {
	if !strings.HasPrefix(path, "repro/internal/") {
		return false
	}
	for _, p := range exemptPrefixes {
		if path == p || strings.HasPrefix(path, p+"/") {
			return false
		}
	}
	return true
}
