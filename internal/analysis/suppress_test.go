package analysis

import (
	"reflect"
	"testing"
)

func TestParseAllow(t *testing.T) {
	cases := []struct {
		text string
		want []string
	}{
		{"//lint:allow maporder", []string{"maporder"}},
		{"//lint:allow maporder -- reason text", []string{"maporder"}},
		{"//lint:allow maporder,timerguard -- two at once", []string{"maporder", "timerguard"}},
		{"//lint:allow  maporder , timerguard", []string{"maporder", "timerguard"}},
		{"// lint:allow maporder", []string{"maporder"}},
		{"//lint:allow", nil},           // no analyzer named
		{"//lint:allow -- only reason", nil},
		{"//lint:allowx maporder", nil}, // prefix must be whole word
		{"// plain comment", nil},
		{"/*lint:allow maporder*/", nil}, // block comments are not directives
	}
	for _, c := range cases {
		if got := parseAllow(c.text); !reflect.DeepEqual(got, c.want) {
			t.Errorf("parseAllow(%q) = %v, want %v", c.text, got, c.want)
		}
	}
}
