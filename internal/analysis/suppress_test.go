package analysis

import (
	"go/ast"
	"go/parser"
	"go/token"
	"reflect"
	"testing"
)

func TestParseAllow(t *testing.T) {
	cases := []struct {
		text string
		want []string
	}{
		{"//lint:allow maporder", []string{"maporder"}},
		{"//lint:allow maporder -- reason text", []string{"maporder"}},
		{"//lint:allow maporder,timerguard -- two at once", []string{"maporder", "timerguard"}},
		{"//lint:allow  maporder , timerguard", []string{"maporder", "timerguard"}},
		{"// lint:allow maporder", []string{"maporder"}},
		{"//lint:allow", nil},           // no analyzer named
		{"//lint:allow -- only reason", nil},
		{"//lint:allowx maporder", nil}, // prefix must be whole word
		{"// plain comment", nil},
		{"/*lint:allow maporder*/", nil}, // block comments are not directives
	}
	for _, c := range cases {
		if got := parseAllow(c.text); !reflect.DeepEqual(got, c.want) {
			t.Errorf("parseAllow(%q) = %v, want %v", c.text, got, c.want)
		}
	}
}

func TestParseAllowMalformed(t *testing.T) {
	cases := []string{
		"//lint:allow ,",          // only separators
		"//lint:allow , , --",     // separators then reason marker
		"//lint:allow\t",          // whitespace, no names
		"//lint:allow --",         // bare reason marker
		"//lint: allow maporder",  // space inside the prefix
		"//LINT:ALLOW maporder",   // directives are case-sensitive
		"//lint:bridge detflow",   // a different directive, not allow
	}
	for _, text := range cases {
		if got := parseAllow(text); got != nil {
			t.Errorf("parseAllow(%q) = %v, want nil", text, got)
		}
	}
}

func TestParseAllowReasonless(t *testing.T) {
	// A reason is strongly encouraged but not required by the parser;
	// review, not tooling, enforces justification quality.
	if got := parseAllow("//lint:allow detflow"); !reflect.DeepEqual(got, []string{"detflow"}) {
		t.Errorf("reason-less directive = %v", got)
	}
	if got := parseAllow("//lint:allow detflow,goroutineguard"); !reflect.DeepEqual(got, []string{"detflow", "goroutineguard"}) {
		t.Errorf("reason-less multi-analyzer directive = %v", got)
	}
}

func TestCollectAllowsPlacement(t *testing.T) {
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "s.go", `package p

//lint:allow alpha -- above placement
func a() {}

func b() { //lint:allow beta,gamma -- same-line, two analyzers
}

//lint:allow delta
func gap() {
}
`, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	set := collectAllows(fset, []*ast.File{f})

	pos := func(line int) token.Position { return token.Position{Filename: "s.go", Line: line} }
	if !set.suppressed("alpha", pos(3)) || !set.suppressed("alpha", pos(4)) {
		t.Error("directive must grant its own line and the next")
	}
	if set.suppressed("alpha", pos(5)) {
		t.Error("directive reach must stop after one line")
	}
	if !set.suppressed("beta", pos(6)) || !set.suppressed("gamma", pos(6)) {
		t.Error("same-line multi-analyzer grant failed")
	}
	if set.suppressed("beta", pos(4)) {
		t.Error("analyzers must not leak across directives")
	}
	// Fact-producing analyzers are suppressed by exact name like any
	// other; the taint sanitizer path reads the same set via
	// Pass.Allowed.
	if !set.suppressed("delta", pos(10)) {
		t.Error("reason-less directive must still grant")
	}
	if set.suppressed("epsilon", pos(10)) {
		t.Error("unnamed analyzer must not be granted")
	}
}

func TestPassAllowedSanitizerSeam(t *testing.T) {
	// Pass.Allowed is the seam fact producers use to treat a justified
	// suppression as a sanitizer (taint drops sources, wallclockboundary
	// drops the NetFact). It must see the same set the report filter uses.
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "s.go", `package p

func f() {
	g() //lint:allow detflow -- charter exception

	g()
}

func g() {}
`, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	pass := &Pass{Fset: fset, allow: collectAllows(fset, []*ast.File{f})}

	var calls []*ast.CallExpr
	ast.Inspect(f, func(n ast.Node) bool {
		if c, ok := n.(*ast.CallExpr); ok {
			calls = append(calls, c)
		}
		return true
	})
	if len(calls) != 2 {
		t.Fatalf("want 2 calls, got %d", len(calls))
	}
	if !pass.Allowed("detflow", calls[0].Pos()) {
		t.Error("allowed call site not recognized")
	}
	if pass.Allowed("detflow", calls[1].Pos()) {
		t.Error("unallowed call site wrongly sanctioned")
	}
	if pass.Allowed("simdeterminism", calls[0].Pos()) {
		t.Error("suppression must not spill onto unnamed analyzers")
	}
}
