package analysis

import (
	"bytes"
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"strings"
	"testing"
)

// noteFact is the test fact type.
type noteFact struct {
	Note string `json:"note"`
}

func (*noteFact) AFact() {}

// otherFact exercises multi-type keys.
type otherFact struct {
	N int `json:"n"`
}

func (*otherFact) AFact() {}

// checkSrc type-checks one source string as a package, resolving imports
// from deps.
func checkSrc(t *testing.T, fset *token.FileSet, path, src string, deps map[string]*types.Package) *Package {
	t.Helper()
	f, err := parser.ParseFile(fset, strings.ReplaceAll(path, "/", "_")+".go", src, parser.ParseComments)
	if err != nil {
		t.Fatalf("parse %s: %v", path, err)
	}
	conf := types.Config{Importer: mapImporter(deps)}
	pkg, err := conf.Check(path, fset, []*ast.File{f}, nil)
	if err != nil {
		t.Fatalf("check %s: %v", path, err)
	}
	return &Package{ImportPath: path, Fset: fset, Files: []*ast.File{f}, Pkg: pkg}
}

type mapImporter map[string]*types.Package

func (m mapImporter) Import(path string) (*types.Package, error) {
	if pkg, ok := m[path]; ok {
		return pkg, nil
	}
	return nil, &importError{path}
}

type importError struct{ path string }

func (e *importError) Error() string { return "no test package " + e.path }

func TestObjectKey(t *testing.T) {
	fset := token.NewFileSet()
	pkg := checkSrc(t, fset, "p", `
package p

func F() {}

type T struct{}

func (T) M() {}
func (*T) PM() {}

var V int

func local() {
	x := 1
	_ = x
}
`, nil)
	scope := pkg.Pkg.Scope()

	if key, ok := ObjectKey(scope.Lookup("F")); !ok || key != "F" {
		t.Errorf("F key = %q, %v", key, ok)
	}
	if key, ok := ObjectKey(scope.Lookup("V")); !ok || key != "V" {
		t.Errorf("V key = %q, %v", key, ok)
	}
	tt := scope.Lookup("T").Type()
	for _, m := range []string{"M", "PM"} {
		obj, _, _ := types.LookupFieldOrMethod(tt, true, pkg.Pkg, m)
		if key, ok := ObjectKey(obj); !ok || key != "T."+m {
			t.Errorf("%s key = %q, %v, want T.%s", m, key, ok, m)
		}
	}
	// Local objects have no stable key.
	inner := scope.Lookup("local").(*types.Func).Scope().Lookup("x")
	if _, ok := ObjectKey(inner); ok {
		t.Error("local variable should not be keyable")
	}
}

func TestStoreRoundTrip(t *testing.T) {
	a := &Analyzer{Name: "a", FactTypes: []Fact{(*noteFact)(nil), (*otherFact)(nil)}, Run: func(*Pass) (interface{}, error) { return nil, nil }}
	s := NewStore([]*Analyzer{a})

	s.export("p", "F", &noteFact{Note: "hello"})
	s.export("p", "", &noteFact{Note: "pkg-level"})
	s.export("p", "F", &otherFact{N: 7})

	var nf noteFact
	if !s.lookup("p", "F", &nf) || nf.Note != "hello" {
		t.Errorf("object fact: got %+v", nf)
	}
	if !s.lookup("p", "", &nf) || nf.Note != "pkg-level" {
		t.Errorf("package fact: got %+v", nf)
	}
	var of otherFact
	if !s.lookup("p", "F", &of) || of.N != 7 {
		t.Errorf("second type on same key: got %+v", of)
	}
	if s.lookup("p", "G", &nf) {
		t.Error("lookup of absent object should fail")
	}

	// lookup must copy, not alias: mutating the result must not change
	// the stored fact.
	nf.Note = "mutated"
	var nf2 noteFact
	s.lookup("p", "F", &nf2)
	if nf2.Note != "hello" {
		t.Errorf("stored fact aliased by lookup: %q", nf2.Note)
	}
}

func TestStoreEncodeDecode(t *testing.T) {
	a := &Analyzer{Name: "a", FactTypes: []Fact{(*noteFact)(nil)}, Run: func(*Pass) (interface{}, error) { return nil, nil }}
	s := NewStore([]*Analyzer{a})
	s.export("dep", "F", &noteFact{Note: "from dep"})
	s.export("dep", "", &noteFact{Note: "dep pkg"})

	data, err := s.Encode()
	if err != nil {
		t.Fatal(err)
	}
	// Byte determinism: encoding twice gives identical bytes.
	data2, _ := s.Encode()
	if !bytes.Equal(data, data2) {
		t.Error("Encode is not deterministic")
	}

	s2 := NewStore([]*Analyzer{a})
	if err := s2.Decode(data); err != nil {
		t.Fatal(err)
	}
	var nf noteFact
	if !s2.lookup("dep", "F", &nf) || nf.Note != "from dep" {
		t.Errorf("decoded object fact: %+v", nf)
	}
	if !s2.lookup("dep", "", &nf) || nf.Note != "dep pkg" {
		t.Errorf("decoded package fact: %+v", nf)
	}

	// Inherited facts are re-encoded so they flow through indirect
	// dependencies: decode dep facts, add own, encode — both present.
	s2.export("mid", "G", &noteFact{Note: "own"})
	data3, _ := s2.Encode()
	s3 := NewStore([]*Analyzer{a})
	if err := s3.Decode(data3); err != nil {
		t.Fatal(err)
	}
	if !s3.lookup("dep", "F", &nf) {
		t.Error("inherited fact dropped on re-encode")
	}
	if !s3.lookup("mid", "G", &nf) {
		t.Error("own fact missing after re-encode")
	}
}

func TestStoreDecodeEdgeCases(t *testing.T) {
	a := &Analyzer{Name: "a", FactTypes: []Fact{(*noteFact)(nil)}, Run: func(*Pass) (interface{}, error) { return nil, nil }}
	s := NewStore([]*Analyzer{a})

	if err := s.Decode(nil); err != nil {
		t.Errorf("empty data should be a no-op, got %v", err)
	}
	if err := s.Decode([]byte(`{"version":99,"facts":[]}`)); err == nil {
		t.Error("version mismatch should error")
	}
	// Unknown fact types are skipped, known ones still land.
	doc := `{"version":1,"facts":[
		{"pkg":"p","obj":"F","type":"future.UnknownFact","data":{"x":1}},
		{"pkg":"p","obj":"F","type":"repro/internal/analysis.noteFact","data":{"note":"kept"}}]}`
	if err := s.Decode([]byte(doc)); err != nil {
		t.Fatalf("decode with unknown type: %v", err)
	}
	var nf noteFact
	if !s.lookup("p", "F", &nf) || nf.Note != "kept" {
		t.Errorf("known fact alongside unknown: %+v", nf)
	}
}

func TestExportObjectFactOwnership(t *testing.T) {
	fset := token.NewFileSet()
	dep := checkSrc(t, fset, "dep", `package dep; func F() {}`, nil)
	top := checkSrc(t, fset, "top", `package top; import "dep"; func G() { dep.F() }`, map[string]*types.Package{"dep": dep.Pkg})

	a := &Analyzer{Name: "a", FactTypes: []Fact{(*noteFact)(nil)}, Run: func(*Pass) (interface{}, error) { return nil, nil }}
	store := NewStore([]*Analyzer{a})
	pass := &Pass{Analyzer: a, Fset: fset, Pkg: top.Pkg, store: store}

	defer func() {
		if recover() == nil {
			t.Error("exporting a fact on another package's object should panic")
		}
	}()
	pass.ExportObjectFact(dep.Pkg.Scope().Lookup("F"), &noteFact{Note: "nope"})
}
