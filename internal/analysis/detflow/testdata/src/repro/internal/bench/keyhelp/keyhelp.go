// Package keyhelp is the detflow laundering fixture: helpers in an
// exempt subtree (bench is outside simdeterminism's reporting scope)
// that reach nondeterminism sources one or two layers down. Nothing is
// reported HERE — the point is that calls to these helpers from sim
// packages are reported THERE, with the full chain reconstructed from
// facts.
package keyhelp

import (
	"crypto/ecdh"
	"io"
	"time"
)

// MakeKey is the PR 7 shape: two layers of plausible-looking helper
// between the sim caller and GenerateKey's scheduler-dependent byte
// draw.
func MakeKey(r io.Reader) (*ecdh.PrivateKey, error) {
	return newKey(r)
}

func newKey(r io.Reader) (*ecdh.PrivateKey, error) {
	return ecdh.P256().GenerateKey(r)
}

// Stamp reads the wall clock.
func Stamp() int64 {
	return time.Now().UnixNano()
}

// WaitEither resolves on goroutine completion order: whichever sender
// wins the race decides the result.
func WaitEither(a, b <-chan int) int {
	select {
	case v := <-a:
		return v
	case v := <-b:
		return v
	}
}
