// Package detfix is the detflow fixture proper: sim-scoped code calling
// the keyhelp launderers. Every tainted call site is flagged with its
// reconstructed chain; the bridge and allow escapes each appear once,
// with their callers proving the sanitizer semantics (a justified
// exception covers transitive callers instead of cascading).
package detfix

import (
	"io"

	"repro/internal/bench/keyhelp"
)

func deviceKey(r io.Reader) error {
	_, err := keyhelp.MakeKey(r) // want `call to keyhelp\.MakeKey consumes a scheduler-dependent number of reader bytes \(keyhelp\.MakeKey → keyhelp\.newKey → ecdh\.GenerateKey\)`
	return err
}

func stampNow() int64 {
	return keyhelp.Stamp() // want `call to keyhelp\.Stamp reads the wall clock \(keyhelp\.Stamp → time\.Now\)`
}

func waitFirst(a, b <-chan int) int {
	return keyhelp.WaitEither(a, b) // want `call to keyhelp\.WaitEither resolves on goroutine completion order \(keyhelp\.WaitEither → multi-case select\)`
}

// localKey launders once more inside the sim tree; detflow flags both
// the inner call and, below, the wrapper's own caller — taint propagates
// through unsanctioned intermediate hops.
func localKey(r io.Reader) error {
	_, err := keyhelp.MakeKey(r) // want `call to keyhelp\.MakeKey consumes a scheduler-dependent number of reader bytes`
	return err
}

func useLocal(r io.Reader) error {
	return localKey(r) // want `call to detfix\.localKey consumes a scheduler-dependent number of reader bytes \(detfix\.localKey → keyhelp\.MakeKey → keyhelp\.newKey → ecdh\.GenerateKey\)`
}

// syncToWall is the sanctioned sim/wall-time seam: a bridge function
// exports no taint and its body is not policed.
//
//lint:bridge detflow -- calibration seam: pairs sim ticks with wall time by charter
func syncToWall() int64 {
	return keyhelp.Stamp()
}

func afterBridge() int64 {
	return syncToWall() // clean: the bridge contains its taint
}

// sealedKey documents a justified exception; the allow suppresses the
// finding AND sanitizes sealedKey's summary, so afterAllowed stays
// clean.
func sealedKey(r io.Reader) error {
	_, err := keyhelp.MakeKey(r) //lint:allow detflow -- one-time provisioning key, outside the reproducible window
	return err
}

func afterAllowed(r io.Reader) error {
	return sealedKey(r) // clean: the justification covers callers
}
