package detflow_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/detflow"
)

func TestDetflow(t *testing.T) {
	analysistest.Run(t, "testdata", detflow.Analyzer,
		"repro/internal/bench/keyhelp", // dependency first: its facts feed detfix
		"repro/internal/detfix")
}
