// Package detflow flags simulation code that reaches a nondeterminism
// source *indirectly* — through any chain of helper calls, across
// package boundaries — by consuming the per-function taint summaries the
// taint analyzer exports as facts.
//
// simdeterminism catches `time.Now()` written in a sim package;
// detflow catches `helper.Stamp()` where helper (three packages away,
// possibly in an exempt subtree like the bench harness or a sanctioned
// bridge's neighborhood) eventually calls time.Now. The motivating bug
// is PR 7's ecdh GenerateKey: a single call that looked pure consumed a
// scheduler-dependent number of bytes from the sim RNG two stdlib layers
// down, forking every later draw — invisible to file-local lint, caught
// weeks late by a determinism diff. With summaries, the call site itself
// is the finding, with the full laundering chain in the message.
//
// Escapes: a justified `//lint:allow detflow -- reason` on the call site
// both silences the finding and sanitizes the caller's own summary (the
// justification covers transitive callers — see the taint package); a
// function marked `//lint:bridge detflow -- reason` is a sanctioned
// sim/wall-time bridge whose body detflow does not police.
package detflow

import (
	"fmt"
	"go/ast"
	"go/types"
	"strings"

	"repro/internal/analysis"
	"repro/internal/analysis/astq"
	"repro/internal/analysis/simscope"
	"repro/internal/analysis/taint"
)

// Analyzer is the detflow check.
var Analyzer = &analysis.Analyzer{
	Name: "detflow",
	Doc: "flag sim-package calls whose callee transitively reaches a nondeterminism " +
		"source (wall clock, global/crypto rand, GenerateKey, map iteration order, " +
		"goroutine completion order), using cross-package taint facts",
	Requires: []*analysis.Analyzer{taint.Summaries},
	Run:      run,
}

// consequence phrases each taint kind for the diagnostic.
var consequence = map[taint.Kind]string{
	taint.Wallclock:  "reads the wall clock",
	taint.GlobalRand: "draws from the shared math/rand stream",
	taint.CryptoRand: "draws process entropy",
	taint.Keygen:     "consumes a scheduler-dependent number of reader bytes",
	taint.MapIter:    "yields map-iteration order",
	taint.GoOrder:    "resolves on goroutine completion order",
}

func run(pass *analysis.Pass) (interface{}, error) {
	if !simscope.Sim(pass.Pkg.Path()) {
		return nil, nil
	}
	bridged := taint.Bridges(pass.Fset, pass.Files)
	for _, file := range pass.Files {
		if name := pass.Fset.Position(file.Pos()).Filename; strings.HasSuffix(name, "_test.go") {
			continue
		}
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if taint.IsBridged(pass.Fset, pass.Pkg.Path(), bridged, fd) {
				continue
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				callee := astq.CalleeFunc(pass.TypesInfo, call)
				if callee == nil {
					return true
				}
				var fact taint.FuncTaint
				if !pass.ImportObjectFact(callee, &fact) {
					return true
				}
				pass.Reportf(call.Pos(), message(callee, &fact))
				return true
			})
		}
	}
	return nil, nil
}

// message renders one diagnostic: every reached source kind with its
// chain, e.g.
//
//	call to keyhelp.MakeKey consumes a scheduler-dependent number of
//	reader bytes (keyhelp.MakeKey → keyhelp.newKey → ecdh.GenerateKey):
//	sim results must stay pure in (seed, config)
func message(callee *types.Func, fact *taint.FuncTaint) string {
	name := taint.QualifiedName(callee)
	parts := make([]string, len(fact.Sources))
	for i, s := range fact.Sources {
		parts[i] = fmt.Sprintf("%s (%s)", consequence[s.Kind], taint.ExtendChain(name, s.Chain))
	}
	return fmt.Sprintf("call to %s %s: sim results must stay pure in (seed, config)",
		name, strings.Join(parts, "; "))
}
