// The fact store: how analyzers exchange knowledge across package and
// process boundaries.
//
// A Fact is a serializable statement an analyzer makes about a
// package-level object (a function summary, say) or about a whole
// package (— "this package transitively links net"). Within one
// phantomlint process all packages share one in-memory Store and facts
// flow through it as the graph runner works down the dependency order.
// Under `go vet -vettool` each package is a separate process, so the
// store round-trips through the driver's .vetx files: Encode writes every
// fact visible at the end of a unit (own plus inherited, so indirect
// dependencies' facts keep flowing), Decode merges dependency files back
// in. Facts are keyed by (import path, object key, concrete fact type) —
// never by go/types object identity, which does not survive either the
// source importer re-checking a package or a process boundary.
package analysis

import (
	"encoding/json"
	"fmt"
	"go/types"
	"reflect"
	"sort"
	"sync"
)

// Fact is implemented by every fact type. The marker method keeps fact
// types explicit: only types registered via Analyzer.FactTypes can be
// serialized. Facts must be JSON-marshalable pointers to structs.
type Fact interface{ AFact() }

// factKey addresses one fact holder: a package ("" object key) or a
// package-level object within it.
type factKey struct {
	pkg string // import path
	obj string // "" = package fact; "Name" or "Recv.Method"
}

// Store holds facts for one analysis session. It is safe for concurrent
// use by the graph runner's wave workers.
type Store struct {
	mu    sync.Mutex
	reg   map[string]reflect.Type // full type name → concrete struct type
	facts map[factKey]map[string]Fact
}

// NewStore builds a store whose registry covers the fact types declared
// by analyzers (after Requires expansion), so Decode can reconstruct
// concrete values from serialized form.
func NewStore(analyzers []*Analyzer) *Store {
	s := &Store{
		reg:   make(map[string]reflect.Type),
		facts: make(map[factKey]map[string]Fact),
	}
	for _, a := range Expand(analyzers) {
		for _, f := range a.FactTypes {
			t := reflect.TypeOf(f)
			if t == nil || t.Kind() != reflect.Pointer {
				panic(fmt.Sprintf("analysis: analyzer %s declares non-pointer fact type %T", a.Name, f))
			}
			s.reg[factTypeName(t)] = t.Elem()
		}
	}
	return s
}

// factTypeName is the registry key for a pointer fact type:
// "pkgpath.TypeName", unique across analyzers.
func factTypeName(t reflect.Type) string {
	e := t.Elem()
	return e.PkgPath() + "." + e.Name()
}

func (s *Store) export(pkg, obj string, f Fact) {
	name := factTypeName(reflect.TypeOf(f))
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.reg[name]; !ok {
		panic(fmt.Sprintf("analysis: fact type %s was not declared in any analyzer's FactTypes", name))
	}
	key := factKey{pkg: pkg, obj: obj}
	m := s.facts[key]
	if m == nil {
		m = make(map[string]Fact)
		s.facts[key] = m
	}
	m[name] = f
}

// lookup copies the stored fact of ptr's concrete type into ptr.
func (s *Store) lookup(pkg, obj string, ptr Fact) bool {
	name := factTypeName(reflect.TypeOf(ptr))
	s.mu.Lock()
	got, ok := s.facts[factKey{pkg: pkg, obj: obj}][name]
	s.mu.Unlock()
	if !ok {
		return false
	}
	reflect.ValueOf(ptr).Elem().Set(reflect.ValueOf(got).Elem())
	return true
}

// ObjectKey returns the serializable key for a package-level object:
// "Name" for functions, vars, consts and types; "Recv.Method" for
// methods on named types. Local objects have no stable key and return
// ok=false — facts cannot be attached to them.
func ObjectKey(obj types.Object) (string, bool) {
	if obj == nil || obj.Pkg() == nil {
		return "", false
	}
	if fn, ok := obj.(*types.Func); ok {
		if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
			named := namedOf(sig.Recv().Type())
			if named == nil {
				return "", false
			}
			return named.Obj().Name() + "." + fn.Name(), true
		}
	}
	if obj.Parent() != obj.Pkg().Scope() {
		return "", false
	}
	return obj.Name(), true
}

// namedOf unwraps pointers and aliases down to a named type, or nil.
func namedOf(t types.Type) *types.Named {
	for {
		switch tt := t.(type) {
		case *types.Pointer:
			t = tt.Elem()
		case *types.Alias:
			t = types.Unalias(tt)
		case *types.Named:
			return tt
		default:
			return nil
		}
	}
}

// encodedFact is the wire form of one fact.
type encodedFact struct {
	Pkg  string          `json:"pkg"`
	Obj  string          `json:"obj,omitempty"`
	Type string          `json:"type"`
	Data json.RawMessage `json:"data"`
}

// encodedStore versions the fact file format; bump with the vettool -V
// string when fact semantics change so cached .vetx files invalidate.
type encodedStore struct {
	Version int           `json:"version"`
	Facts   []encodedFact `json:"facts"`
}

// factFormatVersion is the serialized fact file format version.
const factFormatVersion = 1

// Encode serializes every fact in the store — the package's own and the
// inherited ones — sorted for byte determinism.
func (s *Store) Encode() ([]byte, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	doc := encodedStore{Version: factFormatVersion}
	for key, byType := range s.facts {
		for name, f := range byType {
			data, err := json.Marshal(f)
			if err != nil {
				return nil, fmt.Errorf("analysis: encoding fact %s on %s.%s: %v", name, key.pkg, key.obj, err)
			}
			doc.Facts = append(doc.Facts, encodedFact{Pkg: key.pkg, Obj: key.obj, Type: name, Data: data})
		}
	}
	sort.Slice(doc.Facts, func(i, j int) bool {
		a, b := doc.Facts[i], doc.Facts[j]
		if a.Pkg != b.Pkg {
			return a.Pkg < b.Pkg
		}
		if a.Obj != b.Obj {
			return a.Obj < b.Obj
		}
		return a.Type < b.Type
	})
	return json.Marshal(doc)
}

// Decode merges a serialized fact file into the store. Facts of types
// absent from the registry are skipped — a fact file written by a newer
// suite stays readable.
func (s *Store) Decode(data []byte) error {
	if len(data) == 0 {
		return nil // empty dependency file: no facts
	}
	var doc encodedStore
	if err := json.Unmarshal(data, &doc); err != nil {
		return fmt.Errorf("analysis: decoding fact file: %v", err)
	}
	if doc.Version != factFormatVersion {
		return fmt.Errorf("analysis: fact file version %d, want %d (stale cache?)", doc.Version, factFormatVersion)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, ef := range doc.Facts {
		t, ok := s.reg[ef.Type]
		if !ok {
			continue
		}
		v := reflect.New(t)
		if err := json.Unmarshal(ef.Data, v.Interface()); err != nil {
			return fmt.Errorf("analysis: decoding fact %s on %s.%s: %v", ef.Type, ef.Pkg, ef.Obj, err)
		}
		key := factKey{pkg: ef.Pkg, obj: ef.Obj}
		m := s.facts[key]
		if m == nil {
			m = make(map[string]Fact)
			s.facts[key] = m
		}
		m[ef.Type] = v.Interface().(Fact)
	}
	return nil
}
