// Package traceguard enforces the zero-tax tracing convention from PR 3.
//
// Components capture an *obs.Trace handle once, at Instrument time, and
// every emission site guards on that handle (`if tr == nil { return }`,
// `if tr != nil { ... }`, or `if tr := reg.Trace(); tr.Enabled() { ... }`)
// before building event arguments. The guard is what keeps disabled
// tracing free: obs.Trace.Emit is itself nil-safe, but an unguarded call
// still pays for constructing detail strings and values on every hot-path
// event — precisely the tax BenchmarkTraceHotPathOverhead bounds at <5%.
//
// The analyzer flags any call to obs.Trace.Emit/Add whose receiver is not
// covered by a nil/Enabled guard in the enclosing function. The obs
// package itself (which defines the ring) and its subpackages are exempt.
package traceguard

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"repro/internal/analysis"
	"repro/internal/analysis/astq"
)

// Analyzer is the traceguard check.
var Analyzer = &analysis.Analyzer{
	Name: "traceguard",
	Doc: "obs.Trace emission must go through a handle captured at Instrument time, " +
		"nil/Enabled-guarded so disabled tracing stays zero-tax",
	Run: run,
}

func run(pass *analysis.Pass) (interface{}, error) {
	path := pass.Pkg.Path()
	if path == "repro/internal/obs" || strings.HasPrefix(path, "repro/internal/obs/") {
		return nil, nil
	}
	for _, f := range pass.Files {
		astq.WalkStack(f, func(n ast.Node, stack []ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
			if !ok {
				return true
			}
			fn := astq.CalleeFunc(pass.TypesInfo, call)
			if !astq.MethodOn(fn, "repro/internal/obs", "Trace") ||
				(fn.Name() != "Emit" && fn.Name() != "Add") {
				return true
			}
			recv := types.ExprString(sel.X)
			if guarded(stack, recv, call.Pos()) {
				return true
			}
			pass.Reportf(call.Pos(), fmt.Sprintf(
				"unguarded obs.Trace.%s: emission must be nil/Enabled-guarded on the Instrument-time handle "+
					"(e.g. `if %s == nil { return }`) so disabled tracing costs nothing on hot paths",
				fn.Name(), recv))
			return true
		})
	}
	return nil, nil
}

// guarded reports whether the emission at pos, with receiver text recv, is
// covered by a guard: an enclosing if whose condition proves the handle
// live in the taken branch, or an earlier early-return nil check in the
// same function.
func guarded(stack []ast.Node, recv string, pos token.Pos) bool {
	for i := len(stack) - 1; i >= 0; i-- {
		switch s := stack[i].(type) {
		case *ast.IfStmt:
			inBody := s.Body != nil && s.Body.Pos() <= pos && pos < s.Body.End()
			inElse := s.Else != nil && s.Else.Pos() <= pos && pos < s.Else.End()
			pol, ok := guardPolarity(s.Cond, recv)
			if ok && ((pol && inBody) || (!pol && inElse)) {
				return true
			}
		// An early `if recv == nil { return }` before the emission in the
		// innermost function covers everything after it.
		case *ast.FuncDecl:
			return hasEarlyReturnGuard(s.Body, recv, pos)
		case *ast.FuncLit:
			return hasEarlyReturnGuard(s.Body, recv, pos)
		}
	}
	return false
}

// guardPolarity inspects an if condition for a guard on recv: it returns
// (true, true) for conditions that prove the handle live when taken
// (`recv != nil`, `recv.Enabled()`), (false, true) for conditions that
// prove it dead (`recv == nil`, `!recv.Enabled()`), and ok=false when the
// condition says nothing about recv.
func guardPolarity(cond ast.Expr, recv string) (positive, ok bool) {
	found := false
	pos := false
	ast.Inspect(cond, func(n ast.Node) bool {
		if found {
			return false
		}
		switch e := n.(type) {
		case *ast.BinaryExpr:
			if e.Op == token.NEQ || e.Op == token.EQL {
				if isNilCompare(e, recv) {
					found, pos = true, e.Op == token.NEQ
					return false
				}
			}
		case *ast.CallExpr:
			if isEnabledCall(e, recv) {
				found, pos = true, true
				return false
			}
		case *ast.UnaryExpr:
			if e.Op == token.NOT {
				if c, okc := ast.Unparen(e.X).(*ast.CallExpr); okc && isEnabledCall(c, recv) {
					found, pos = true, false
					return false
				}
			}
		}
		return true
	})
	return pos, found
}

func isNilCompare(e *ast.BinaryExpr, recv string) bool {
	x, y := types.ExprString(e.X), types.ExprString(e.Y)
	return (x == recv && y == "nil") || (y == recv && x == "nil")
}

func isEnabledCall(c *ast.CallExpr, recv string) bool {
	sel, ok := ast.Unparen(c.Fun).(*ast.SelectorExpr)
	return ok && sel.Sel.Name == "Enabled" && types.ExprString(sel.X) == recv
}

// hasEarlyReturnGuard reports whether body contains, before pos, an
// `if recv == nil { ... return ... }` statement.
func hasEarlyReturnGuard(body *ast.BlockStmt, recv string, pos token.Pos) bool {
	if body == nil {
		return false
	}
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		s, ok := n.(*ast.IfStmt)
		if !ok || s.End() > pos {
			return true
		}
		if p, okp := guardPolarity(s.Cond, recv); okp && !p && containsReturn(s.Body) {
			found = true
			return false
		}
		return true
	})
	return found
}

func containsReturn(b *ast.BlockStmt) bool {
	found := false
	ast.Inspect(b, func(n ast.Node) bool {
		switch n.(type) {
		case *ast.ReturnStmt:
			found = true
			return false
		case *ast.FuncLit:
			return false // a return inside a closure doesn't leave the guard's function
		}
		return !found
	})
	return found
}
