// Package tracefix exercises the traceguard analyzer: unguarded
// obs.Trace emission is a finding; the three sanctioned guard shapes
// (early return, enclosing if, Enabled-capture) are not.
package tracefix

import "repro/internal/obs"

type component struct {
	trace *obs.Trace
	reg   registry
}

type registry struct{ tr *obs.Trace }

func (r registry) Trace() *obs.Trace { return r.tr }

// Bad: emission with no guard pays argument construction even when
// tracing is disabled.
func (c *component) unguarded(at int64) {
	c.trace.Emit(0, "fix", "ev", "detail", at) // want `unguarded obs\.Trace\.Emit`
}

// Bad: Add is an emission too.
func (c *component) unguardedAdd() {
	c.trace.Add(obs.TraceEvent{Component: "fix"}) // want `unguarded obs\.Trace\.Add`
}

// Bad: guarding a different handle does not cover this one.
func (c *component) wrongGuard(other *obs.Trace) {
	if other != nil {
		c.trace.Emit(0, "fix", "ev", "", 0) // want `unguarded obs\.Trace\.Emit`
	}
}

// Good: the early-return helper idiom used across the simulators.
func (c *component) emit(event string) {
	if c.trace == nil {
		return
	}
	c.trace.Emit(0, "fix", event, "", 0)
}

// Good: an enclosing positive nil check.
func (c *component) guardedIf() {
	if c.trace != nil {
		c.trace.Emit(0, "fix", "ev", "", 0)
	}
}

// Good: emission in the else branch of a nil check.
func (c *component) guardedElse() {
	if c.trace == nil {
		_ = c
	} else {
		c.trace.Emit(0, "fix", "ev", "", 0)
	}
}

// Good: the Instrument-time capture idiom — grab the handle and test
// Enabled before emitting.
func (c *component) enabledCapture() {
	if tr := c.reg.Trace(); tr.Enabled() {
		tr.Emit(0, "fix", "ev", "", 0)
	}
}

// Good: negated-Enabled early return.
func (c *component) enabledEarlyReturn() {
	tr := c.reg.Trace()
	if !tr.Enabled() {
		return
	}
	tr.Emit(0, "fix", "ev", "", 0)
}

// Good: justified suppression.
func (c *component) suppressed() {
	c.trace.Emit(0, "fix", "ev", "", 0) //lint:allow traceguard -- fixture demonstrates suppression
}

// The replay engine's shape: Instrument assigns the handle only when the
// ring is enabled, every trial then reports through one emit helper. The
// analyzer is function-local on purpose — gating the assignment does not
// excuse an unguarded emission site, because a second Instrument call or a
// zero-value engine leaves the handle nil again.

type replayEngine struct {
	trace *obs.Trace
	reg   registry
}

func (e *replayEngine) instrument() {
	if tr := e.reg.Trace(); tr.Enabled() {
		e.trace = tr
	}
}

// Bad: relies on instrument's Enabled gate instead of guarding here.
func (e *replayEngine) injectUnguarded(verdict string) {
	e.trace.Emit(0, "replay", "replay_injected", verdict, 1) // want `unguarded obs\.Trace\.Emit`
}

// Bad: a guard around only the detail construction leaves the emission
// itself uncovered.
func (e *replayEngine) halfGuarded(accepted bool) {
	detail := ""
	if e.trace != nil {
		if accepted {
			detail = "accepted"
		}
	}
	e.trace.Emit(0, "replay", "replay_verdict", detail, 0) // want `unguarded obs\.Trace\.Emit`
}

// Good: the engine's emit helper — early return on the captured handle,
// argument construction strictly after the guard.
func (e *replayEngine) emit(event, detail string, value int64) {
	if e.trace == nil {
		return
	}
	e.trace.Emit(0, "replay", event, detail, value)
}

// Good: per-trial loop funnelling through the guarded helper keeps the
// call sites themselves emission-free.
func (e *replayEngine) runTrials(n int) {
	for i := 0; i < n; i++ {
		e.emit("replay_injected", "app", int64(i))
	}
}
