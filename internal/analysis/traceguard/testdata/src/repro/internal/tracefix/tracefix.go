// Package tracefix exercises the traceguard analyzer: unguarded
// obs.Trace emission is a finding; the three sanctioned guard shapes
// (early return, enclosing if, Enabled-capture) are not.
package tracefix

import "repro/internal/obs"

type component struct {
	trace *obs.Trace
	reg   registry
}

type registry struct{ tr *obs.Trace }

func (r registry) Trace() *obs.Trace { return r.tr }

// Bad: emission with no guard pays argument construction even when
// tracing is disabled.
func (c *component) unguarded(at int64) {
	c.trace.Emit(0, "fix", "ev", "detail", at) // want `unguarded obs\.Trace\.Emit`
}

// Bad: Add is an emission too.
func (c *component) unguardedAdd() {
	c.trace.Add(obs.TraceEvent{Component: "fix"}) // want `unguarded obs\.Trace\.Add`
}

// Bad: guarding a different handle does not cover this one.
func (c *component) wrongGuard(other *obs.Trace) {
	if other != nil {
		c.trace.Emit(0, "fix", "ev", "", 0) // want `unguarded obs\.Trace\.Emit`
	}
}

// Good: the early-return helper idiom used across the simulators.
func (c *component) emit(event string) {
	if c.trace == nil {
		return
	}
	c.trace.Emit(0, "fix", event, "", 0)
}

// Good: an enclosing positive nil check.
func (c *component) guardedIf() {
	if c.trace != nil {
		c.trace.Emit(0, "fix", "ev", "", 0)
	}
}

// Good: emission in the else branch of a nil check.
func (c *component) guardedElse() {
	if c.trace == nil {
		_ = c
	} else {
		c.trace.Emit(0, "fix", "ev", "", 0)
	}
}

// Good: the Instrument-time capture idiom — grab the handle and test
// Enabled before emitting.
func (c *component) enabledCapture() {
	if tr := c.reg.Trace(); tr.Enabled() {
		tr.Emit(0, "fix", "ev", "", 0)
	}
}

// Good: negated-Enabled early return.
func (c *component) enabledEarlyReturn() {
	tr := c.reg.Trace()
	if !tr.Enabled() {
		return
	}
	tr.Emit(0, "fix", "ev", "", 0)
}

// Good: justified suppression.
func (c *component) suppressed() {
	c.trace.Emit(0, "fix", "ev", "", 0) //lint:allow traceguard -- fixture demonstrates suppression
}
