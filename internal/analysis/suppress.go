package analysis

import (
	"go/ast"
	"go/token"
	"strings"
)

// Suppression comments.
//
// A finding is suppressed by a comment of the form
//
//	//lint:allow <analyzer>[,<analyzer>...] [-- reason]
//
// placed either on the same line as the finding or on the line directly
// above it. The analyzer list is exact names (no globs); everything after
// "--" is a free-form justification. The mechanism is deliberately narrow:
// one line of reach, named analyzers only, so a suppression can never
// silently swallow findings it was not written for.

const allowPrefix = "lint:allow"

// allowSet maps file name → line → set of analyzer names allowed on that
// line. A comment grants its own line and the following line, so both the
// same-line and line-above placements resolve to simple line lookups.
type allowSet map[string]map[int]map[string]bool

func (s allowSet) suppressed(analyzer string, pos token.Position) bool {
	lines := s[pos.Filename]
	if lines == nil {
		return false
	}
	return lines[pos.Line][analyzer]
}

func (s allowSet) add(file string, line int, analyzers []string) {
	lines := s[file]
	if lines == nil {
		lines = make(map[int]map[string]bool)
		s[file] = lines
	}
	set := lines[line]
	if set == nil {
		set = make(map[string]bool)
		lines[line] = set
	}
	for _, a := range analyzers {
		set[a] = true
	}
}

// collectAllows scans every comment in the package for lint:allow
// directives.
func collectAllows(fset *token.FileSet, files []*ast.File) allowSet {
	set := make(allowSet)
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				names := parseAllow(c.Text)
				if names == nil {
					continue
				}
				pos := fset.Position(c.Pos())
				// Grant the comment's own line (same-line placement) and
				// the next line (placement directly above the finding).
				set.add(pos.Filename, pos.Line, names)
				set.add(pos.Filename, pos.Line+1, names)
			}
		}
	}
	return set
}

// parseAllow extracts the analyzer names from one comment's text, or nil
// if it is not a lint:allow directive.
func parseAllow(text string) []string {
	body, ok := strings.CutPrefix(text, "//")
	if !ok {
		return nil // /* */ comments are not directives
	}
	body = strings.TrimSpace(body)
	rest, ok := strings.CutPrefix(body, allowPrefix)
	if !ok {
		return nil
	}
	// Directives require whitespace after the prefix ("lint:allowx" is not
	// a directive).
	if rest == "" || (rest[0] != ' ' && rest[0] != '\t') {
		return nil
	}
	rest = strings.TrimSpace(rest)
	if i := strings.Index(rest, "--"); i >= 0 {
		rest = strings.TrimSpace(rest[:i])
	}
	if rest == "" {
		return nil
	}
	var names []string
	for _, n := range strings.Split(rest, ",") {
		if n = strings.TrimSpace(n); n != "" {
			names = append(names, n)
		}
	}
	return names
}
