// Package timerfix exercises the timerguard analyzer: Stop+Schedule
// rearms, discarded NewTimer results, and never-stopped timer fields on
// types with close paths are findings; the Reset idiom and fire-and-forget
// Schedule are not.
package timerfix

import (
	"time"

	"repro/internal/simtime"
)

type comp struct {
	clk *simtime.Clock
	t   *simtime.Timer
}

// Bad: the pre-PR-4 rearm pattern allocates a new event every time.
func (c *comp) rearmOld(d time.Duration, fn func()) {
	c.t.Stop()
	c.t = c.clk.Schedule(d, fn) // want `Stop\+Schedule rearm of c\.t`
}

// Bad: rearming through an absolute-time At call is the same pattern.
func (c *comp) rearmOldAt(at simtime.Time, fn func()) {
	c.t.Stop()
	c.t = c.clk.At(at, fn) // want `Stop\+Schedule rearm of c\.t`
}

// Bad: intervening statements that don't touch the timer don't launder it.
func (c *comp) rearmOldGap(d time.Duration, fn func()) {
	c.t.Stop()
	x := d * 2
	c.t = c.clk.Schedule(x, fn) // want `Stop\+Schedule rearm of c\.t`
}

// Good: the alloc-free idiom.
func (c *comp) rearmNew(d time.Duration) {
	c.t.Reset(d)
}

// Good: Stop followed by rescheduling a different timer.
func (c *comp) stopOther(other *comp, d time.Duration, fn func()) {
	c.t.Stop()
	other.t = other.clk.Schedule(d, fn)
}

// Good: Stop whose next use of the timer is not a reschedule.
func (c *comp) stopThenRead() simtime.Time {
	c.t.Stop()
	return c.t.When()
}

// Bad: a discarded NewTimer can never fire or be stopped.
func discarded(clk *simtime.Clock, fn func()) {
	clk.NewTimer(fn)     // want `result of Clock\.NewTimer discarded`
	_ = clk.NewTimer(fn) // want `result of Clock\.NewTimer discarded`
}

// Good: fire-and-forget scheduling intentionally drops the handle.
func fireAndForget(clk *simtime.Clock, d time.Duration, fn func()) {
	clk.Schedule(d, fn)
}

// Good: justified suppression.
func suppressed(clk *simtime.Clock, fn func()) {
	clk.NewTimer(fn) //lint:allow timerguard -- fixture demonstrates suppression
}

// Bad: leaky owns a timer and has a close path, but nothing ever stops
// the timer — its scheduled event outlives Close.
type leaky struct {
	clk      *simtime.Clock
	deadline *simtime.Timer // want `timer field leaky\.deadline is never Stopped`
}

func (l *leaky) arm(d time.Duration, fn func()) {
	if l.deadline == nil {
		l.deadline = l.clk.NewTimer(fn)
	}
	l.deadline.Reset(d) // arming via Reset is not teardown coverage
}

func (l *leaky) Close() {}

// Good: clean stops its timer on the close path.
type clean struct {
	clk  *simtime.Clock
	idle *simtime.Timer
}

func (c *clean) arm(d time.Duration, fn func()) {
	if c.idle == nil {
		c.idle = c.clk.NewTimer(fn)
	}
	c.idle.Reset(d)
}

func (c *clean) Close() {
	c.idle.Stop()
}

// Good: no close path means one-shot ownership is fine.
type oneshot struct {
	done *simtime.Timer
}

func (o *oneshot) arm(clk *simtime.Clock, d time.Duration, fn func()) {
	o.done = clk.Schedule(d, fn)
}
