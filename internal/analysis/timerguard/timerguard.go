// Package timerguard enforces the alloc-free timer discipline from PR 4.
//
// Three rules, all about simtime timers:
//
//  1. A Stop immediately followed by rescheduling the same timer via
//     Clock.Schedule/At is the pre-PR-4 pattern: it allocates a fresh
//     event on every rearm. Timer.Reset/ResetAt rearms the existing event
//     in place (zero-alloc steady state) with identical ordering
//     semantics, so per-packet rearm sites must use it.
//
//  2. A discarded Clock.NewTimer result is dead: NewTimer returns an
//     unarmed timer, so a handle nobody keeps can never be Reset (armed)
//     or Stopped.
//
//  3. A struct that owns a *simtime.Timer/*simtime.Ticker field and has a
//     close-path method (Close, Stop, Shutdown, Disconnect, Teardown,
//     Cancel) must Stop or Reset that field somewhere in the package.
//     A timer field that nothing ever stops keeps its scheduled event
//     alive past close — the PR 4 mqtt broker deadline leak class
//     (see internal/mqttsim leak_test.go).
package timerguard

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"

	"repro/internal/analysis"
	"repro/internal/analysis/astq"
)

// Analyzer is the timerguard check.
var Analyzer = &analysis.Analyzer{
	Name: "timerguard",
	Doc: "flag Stop+Schedule pairs that should be Timer.Reset/ResetAt, discarded NewTimer results, " +
		"and timer fields never stopped despite a close path",
	Run: run,
}

const simtimePath = "repro/internal/simtime"

// closePathNames are method names treated as a type's teardown surface.
var closePathNames = map[string]bool{
	"Close": true, "Stop": true, "Shutdown": true,
	"Disconnect": true, "Teardown": true, "Cancel": true,
}

func run(pass *analysis.Pass) (interface{}, error) {
	if pass.Pkg.Path() == simtimePath {
		// The clock's own implementation legitimately manipulates events
		// below the Timer abstraction.
		return nil, nil
	}
	stopped := make(map[types.Object]bool)
	for _, f := range pass.Files {
		checkFile(pass, f, stopped)
	}
	checkTimerFields(pass, stopped)
	return nil, nil
}

func checkFile(pass *analysis.Pass, f *ast.File, stopped map[types.Object]bool) {
	ast.Inspect(f, func(n ast.Node) bool {
		switch s := n.(type) {
		case *ast.BlockStmt:
			checkStopScheduleRearm(pass, s)
		case *ast.ExprStmt:
			if call, ok := ast.Unparen(s.X).(*ast.CallExpr); ok && isClockCall(pass.TypesInfo, call, "NewTimer") {
				pass.Reportf(call.Pos(),
					"result of Clock.NewTimer discarded: the timer is unarmed and can never be Reset (armed) or Stopped")
			}
		case *ast.AssignStmt:
			for i, rhs := range s.Rhs {
				call, ok := ast.Unparen(rhs).(*ast.CallExpr)
				if !ok || !isClockCall(pass.TypesInfo, call, "NewTimer") || i >= len(s.Lhs) {
					continue
				}
				if id, ok := ast.Unparen(s.Lhs[i]).(*ast.Ident); ok && id.Name == "_" {
					pass.Reportf(call.Pos(),
						"result of Clock.NewTimer discarded: the timer is unarmed and can never be Reset (armed) or Stopped")
				}
			}
		case *ast.CallExpr:
			recordStoppedField(pass.TypesInfo, s, stopped)
		}
		return true
	})
}

// checkStopScheduleRearm scans a block for `x.Stop()` whose next statement
// touching x reschedules it through the clock.
func checkStopScheduleRearm(pass *analysis.Pass, block *ast.BlockStmt) {
	for i, stmt := range block.List {
		recv := stopReceiver(pass.TypesInfo, stmt)
		if recv == "" {
			continue
		}
		for _, later := range block.List[i+1:] {
			if !mentionsText(later, recv) {
				continue
			}
			if pos, ok := scheduleAssignTo(pass.TypesInfo, later, recv); ok {
				pass.Reportf(pos, fmt.Sprintf(
					"Stop+Schedule rearm of %s allocates a new event per rearm; use Timer.Reset/ResetAt "+
						"to rearm in place (alloc-free, identical ordering)", recv))
			}
			break // first statement touching the timer decides
		}
	}
}

// stopReceiver returns the rendered receiver when stmt is a bare
// `x.Stop()` call on a *simtime.Timer, else "".
func stopReceiver(info *types.Info, stmt ast.Stmt) string {
	es, ok := stmt.(*ast.ExprStmt)
	if !ok {
		return ""
	}
	call, ok := ast.Unparen(es.X).(*ast.CallExpr)
	if !ok {
		return ""
	}
	fn := astq.CalleeFunc(info, call)
	if fn == nil || fn.Name() != "Stop" || !astq.MethodOn(fn, simtimePath, "Timer") {
		return ""
	}
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return ""
	}
	return types.ExprString(sel.X)
}

// scheduleAssignTo reports whether stmt assigns the result of
// Clock.Schedule or Clock.At back into recv, returning the position of
// the offending call.
func scheduleAssignTo(info *types.Info, stmt ast.Stmt, recv string) (token.Pos, bool) {
	as, ok := stmt.(*ast.AssignStmt)
	if !ok {
		return 0, false
	}
	for i, rhs := range as.Rhs {
		if i >= len(as.Lhs) || types.ExprString(as.Lhs[i]) != recv {
			continue
		}
		call, ok := ast.Unparen(rhs).(*ast.CallExpr)
		if !ok {
			continue
		}
		if isClockCall(info, call, "Schedule") || isClockCall(info, call, "At") {
			return call.Pos(), true
		}
	}
	return 0, false
}

func isClockCall(info *types.Info, call *ast.CallExpr, name string) bool {
	fn := astq.CalleeFunc(info, call)
	return fn != nil && fn.Name() == name && astq.MethodOn(fn, simtimePath, "Clock")
}

// mentionsText reports whether any expression in stmt renders to text.
func mentionsText(stmt ast.Stmt, text string) bool {
	found := false
	ast.Inspect(stmt, func(n ast.Node) bool {
		if found {
			return false
		}
		if e, ok := n.(ast.Expr); ok && types.ExprString(e) == text {
			found = true
			return false
		}
		return true
	})
	return found
}

// recordStoppedField marks struct fields that appear as the receiver of a
// Stop call, for rule 3. Reset/ResetAt deliberately do not count: Reset is
// how the alloc-free idiom *arms* a timer, so only an explicit Stop is
// evidence of a teardown path.
func recordStoppedField(info *types.Info, call *ast.CallExpr, stopped map[types.Object]bool) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Stop" {
		return
	}
	fieldSel, ok := ast.Unparen(sel.X).(*ast.SelectorExpr)
	if !ok {
		return
	}
	if obj := info.Uses[fieldSel.Sel]; obj != nil {
		stopped[obj] = true
	}
}

// checkTimerFields applies rule 3 over the package's named struct types.
func checkTimerFields(pass *analysis.Pass, stopped map[types.Object]bool) {
	scope := pass.Pkg.Scope()
	for _, name := range scope.Names() { // Names() is sorted: deterministic reports
		tn, ok := scope.Lookup(name).(*types.TypeName)
		if !ok {
			continue
		}
		named, ok := tn.Type().(*types.Named)
		if !ok {
			continue
		}
		st, ok := named.Underlying().(*types.Struct)
		if !ok {
			continue
		}
		closeName := closePathMethod(named)
		if closeName == "" {
			continue
		}
		for i := 0; i < st.NumFields(); i++ {
			fld := st.Field(i)
			if !isTimerType(fld.Type()) || stopped[fld] {
				continue
			}
			pass.Reportf(fld.Pos(), fmt.Sprintf(
				"timer field %s.%s is never Stopped anywhere in the package although %s has close path %s; "+
					"its scheduled event outlives close (timer-leak class)",
				name, fld.Name(), name, closeName))
		}
	}
}

func closePathMethod(named *types.Named) string {
	for i := 0; i < named.NumMethods(); i++ {
		if m := named.Method(i); closePathNames[m.Name()] {
			return m.Name()
		}
	}
	return ""
}

func isTimerType(t types.Type) bool {
	return astq.NamedTypeIs(t, simtimePath, "Timer") || astq.NamedTypeIs(t, simtimePath, "Ticker")
}
