package timerguard_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/timerguard"
)

func TestTimerGuard(t *testing.T) {
	analysistest.Run(t, "testdata", timerguard.Analyzer, "repro/internal/timerfix")
}
