package ctrlflow

import (
	"go/ast"
	"go/parser"
	"go/token"
	"strings"
	"testing"
)

// parse builds the CFG of the first function declaration in src.
func parse(t *testing.T, src string) (*Graph, *ast.FuncDecl) {
	t.Helper()
	f, err := parser.ParseFile(token.NewFileSet(), "t.go", "package p\n"+src, 0)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	for _, d := range f.Decls {
		if fd, ok := d.(*ast.FuncDecl); ok {
			return New(fd.Body), fd
		}
	}
	t.Fatal("no function in src")
	return nil, nil
}

// findStmt locates the first statement of concrete type T in the body.
func findStmt[T ast.Stmt](fd *ast.FuncDecl) T {
	var out T
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if s, ok := n.(T); ok {
			var zero T
			if any(out) == any(zero) {
				out = s
			}
			return false
		}
		return true
	})
	return out
}

// plain filters out compound head nodes: their Stmt holds the whole
// for/if/switch/select subtree, but the nested statements execute on
// their own nodes, so a predicate matching the head would credit every
// path with work that only some paths perform.
func plain(n *Node) bool {
	switch n.Stmt.(type) {
	case nil, *ast.ForStmt, *ast.RangeStmt, *ast.IfStmt,
		*ast.SwitchStmt, *ast.TypeSwitchStmt, *ast.SelectStmt:
		return false
	}
	return true
}

// hitCall matches plain nodes whose statement contains a call to name.
func hitCall(name string) func(*Node) bool {
	return func(n *Node) bool {
		if !plain(n) {
			return false
		}
		found := false
		ast.Inspect(n.Stmt, func(c ast.Node) bool {
			if call, ok := c.(*ast.CallExpr); ok {
				if id, ok := call.Fun.(*ast.Ident); ok && id.Name == name {
					found = true
				}
			}
			return !found
		})
		return found
	}
}

func TestEveryPathHitsStraightLine(t *testing.T) {
	g, fd := parse(t, `func f() { spawn(); drain() }`)
	spawn := fd.Body.List[0]
	if ok, _ := g.EveryPathHits(spawn, hitCall("drain")); !ok {
		t.Error("drain on the only path not seen")
	}
}

func TestEveryPathHitsEarlyReturn(t *testing.T) {
	g, fd := parse(t, `
func f(xs []int) error {
	spawn()
	for _, x := range xs {
		if bad(x) {
			return errOf(x)
		}
	}
	drain()
	return nil
}`)
	spawn := fd.Body.List[0]
	ok, leak := g.EveryPathHits(spawn, hitCall("drain"))
	if ok {
		t.Fatal("early return path should miss drain")
	}
	if leak == nil || !leak.Return {
		t.Errorf("leak should be a return node, got %+v", leak)
	}
}

func TestLoopExitDistinctFromEntry(t *testing.T) {
	// Entering the range is not completing it: an early return inside the
	// body must not be covered by a hit defined as the loop's normal exit.
	g, fd := parse(t, `
func f(c chan int) error {
	spawn()
	for v := range c {
		if bad(v) {
			return errOf(v)
		}
	}
	return nil
}`)
	spawn := fd.Body.List[0]
	rng := findStmt[*ast.RangeStmt](fd)
	hitExit := func(n *Node) bool { return n.LoopExit == ast.Stmt(rng) }
	if ok, _ := g.EveryPathHits(spawn, hitExit); ok {
		t.Error("return inside range body escaped without reaching the loop exit")
	}
	// Without the early return the only way out is the loop exit.
	g2, fd2 := parse(t, `
func f(c chan int) {
	spawn()
	for v := range c {
		use(v)
	}
}`)
	rng2 := findStmt[*ast.RangeStmt](fd2)
	if ok, _ := g2.EveryPathHits(fd2.Body.List[0], func(n *Node) bool { return n.LoopExit == ast.Stmt(rng2) }); !ok {
		t.Error("completed range should satisfy the loop-exit hit")
	}
}

func TestBreakSkipsLoopBody(t *testing.T) {
	g, fd := parse(t, `
func f(n int) {
	spawn()
	for i := 0; i < n; i++ {
		if done(i) {
			break
		}
		drain()
	}
}`)
	if ok, _ := g.EveryPathHits(fd.Body.List[0], hitCall("drain")); ok {
		t.Error("break path and zero-iteration path both skip drain")
	}
}

func TestSelectCommClausesAreNodes(t *testing.T) {
	g, fd := parse(t, `
func f(c, stop chan int) {
	spawn()
	select {
	case v := <-c:
		use(v)
	case <-stop:
	}
}`)
	// The <-stop path never executes use(v).
	if ok, _ := g.EveryPathHits(fd.Body.List[0], hitCall("use")); ok {
		t.Error("stop clause path should miss use")
	}
	// But every clause leads through its own comm statement; hitting
	// either receive covers all paths only if both clauses receive.
	recvAny := func(n *Node) bool {
		if !plain(n) {
			return false
		}
		found := false
		ast.Inspect(n.Stmt, func(c ast.Node) bool {
			if u, ok := c.(*ast.UnaryExpr); ok && u.Op == token.ARROW {
				found = true
			}
			return !found
		})
		return found
	}
	if ok, _ := g.EveryPathHits(fd.Body.List[0], recvAny); !ok {
		t.Error("both clauses receive; every path should hit a receive")
	}
}

func TestSwitchWithoutDefaultFallsThrough(t *testing.T) {
	g, fd := parse(t, `
func f(x int) {
	spawn()
	switch x {
	case 1:
		drain()
	}
}`)
	if ok, _ := g.EveryPathHits(fd.Body.List[0], hitCall("drain")); ok {
		t.Error("the no-case path skips drain")
	}
	g2, fd2 := parse(t, `
func f(x int) {
	spawn()
	switch x {
	case 1:
		drain()
	default:
		drain()
	}
}`)
	if ok, _ := g2.EveryPathHits(fd2.Body.List[0], hitCall("drain")); !ok {
		t.Error("every case drains; all paths should hit")
	}
}

func TestPanicIsTerminal(t *testing.T) {
	g, fd := parse(t, `
func f(x int) {
	spawn()
	if bad(x) {
		panic("no")
	}
	drain()
}`)
	if ok, _ := g.EveryPathHits(fd.Body.List[0], hitCall("drain")); !ok {
		t.Error("the panic path never returns and needs no drain")
	}
}

func TestDefersCollected(t *testing.T) {
	g, _ := parse(t, `
func f() {
	defer drain()
	spawn()
	go func() { defer inner() }()
}`)
	if len(g.Defers) != 1 {
		t.Fatalf("got %d defers, want 1 (literal bodies are separate graphs)", len(g.Defers))
	}
	if !strings.Contains(nodeText(g.Defers[0]), "drain") {
		t.Errorf("wrong defer collected")
	}
}

func nodeText(d *ast.DeferStmt) string {
	if id, ok := d.Call.Fun.(*ast.Ident); ok {
		return id.Name
	}
	return ""
}

func TestGotoIsUnsupported(t *testing.T) {
	g, fd := parse(t, `
func f() {
	spawn()
	goto out
out:
	return
}`)
	if !g.Unsupported {
		t.Fatal("goto should mark the graph unsupported")
	}
	if ok, _ := g.EveryPathHits(fd.Body.List[0], func(*Node) bool { return false }); !ok {
		t.Error("unsupported graphs must decline (report nothing)")
	}
}

func TestLabeledBreakTargetsOuterLoop(t *testing.T) {
	g, fd := parse(t, `
func f(xs [][]int) {
	spawn()
outer:
	for _, row := range xs {
		for _, v := range row {
			if bad(v) {
				break outer
			}
		}
	}
	drain()
}`)
	if g.Unsupported {
		t.Fatal("labeled break within scope should stay supported")
	}
	if ok, _ := g.EveryPathHits(fd.Body.List[0], hitCall("drain")); !ok {
		t.Error("all paths — including the labeled break — flow into drain")
	}
}
