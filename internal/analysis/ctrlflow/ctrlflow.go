// Package ctrlflow builds a lightweight statement-level control-flow
// graph over go/ast function bodies — the intra-function dataflow layer
// of phantomlint v2. It answers path questions that syntactic scanning
// cannot: "can this function return without passing statement X?" is
// exactly the shape of the PR 9 checkpoint-failure leak, where one early
// return inside the collect loop skipped the drain that every other path
// performed.
//
// The graph is deliberately small: one node per statement, successor
// edges for if/for/range/switch/select/branch statements, synthetic
// nodes for loop exits (so analyses can distinguish "entered the loop"
// from "ran it to completion" — the difference between touching a drain
// loop and draining), and a synthetic exit node for falling off the end
// of the function. goto bails out: the graph marks itself Unsupported
// and path analyses decline rather than guess.
package ctrlflow

import (
	"go/ast"
)

// Node is one CFG vertex.
type Node struct {
	// Stmt is the statement this node represents; nil for synthetic
	// nodes (Exit, loop exits).
	Stmt ast.Stmt
	// LoopExit, when non-nil, marks a synthetic node on the normal-exit
	// edge of the named loop statement: control reaches it only by the
	// loop condition failing, the range ending, or a break.
	LoopExit ast.Stmt
	// Return marks return statements and the synthetic function exit.
	Return bool
	// Succs are the possible successor nodes.
	Succs []*Node
}

// Graph is the CFG of one function body.
type Graph struct {
	// Entry is the first node of the body (the Exit node for an empty
	// body).
	Entry *Node
	// Exit is the synthetic fall-off-the-end node; Return is true on it.
	Exit *Node
	// Defers collects the body's defer statements (outside nested
	// function literals): they run on every return path, so path
	// analyses should check them before walking the graph.
	Defers []*ast.DeferStmt
	// Unsupported is set when the body uses goto; path analyses should
	// decline (report nothing) rather than reason over a wrong graph.
	Unsupported bool

	nodes map[ast.Stmt]*Node
}

// New builds the CFG of body. Nested function literals are opaque: their
// statements belong to their own graphs.
func New(body *ast.BlockStmt) *Graph {
	g := &Graph{nodes: make(map[ast.Stmt]*Node)}
	g.Exit = &Node{Return: true}
	b := &builder{g: g}
	g.Entry = b.stmts(body.List, g.Exit)
	return g
}

// NodeFor returns the node representing stmt, or nil.
func (g *Graph) NodeFor(stmt ast.Stmt) *Node { return g.nodes[stmt] }

// EveryPathHits reports whether every control-flow path from `from`
// (exclusive) to any return — explicit or the implicit function exit —
// passes a node satisfying hit. If not, leak is a return node reachable
// while unhit. Declines (true, nil) on Unsupported graphs and when
// `from` has no node.
func (g *Graph) EveryPathHits(from ast.Stmt, hit func(*Node) bool) (ok bool, leak *Node) {
	if g.Unsupported {
		return true, nil
	}
	start := g.nodes[from]
	if start == nil {
		return true, nil
	}
	seen := make(map[*Node]bool)
	stack := append([]*Node(nil), start.Succs...)
	for len(stack) > 0 {
		n := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if seen[n] {
			continue
		}
		seen[n] = true
		if hit(n) {
			continue // this path is satisfied; stop expanding it
		}
		if n.Return {
			return false, n
		}
		stack = append(stack, n.Succs...)
	}
	return true, nil
}

// builder threads loop/switch context through recursive construction.
type builder struct {
	g      *Graph
	breaks []breakable
}

// breakable is one enclosing break/continue target.
type breakable struct {
	label    string
	isLoop   bool
	breakTo  *Node
	contTo   *Node
}

// node allocates (or reuses) the node for stmt.
func (b *builder) node(stmt ast.Stmt) *Node {
	if n, ok := b.g.nodes[stmt]; ok {
		return n
	}
	n := &Node{Stmt: stmt}
	b.g.nodes[stmt] = n
	return n
}

// stmts builds a statement list flowing into next, returning the entry.
func (b *builder) stmts(list []ast.Stmt, next *Node) *Node {
	entry := next
	for i := len(list) - 1; i >= 0; i-- {
		entry = b.stmt(list[i], "", entry)
	}
	return entry
}

// stmt builds one statement flowing into next, returning its entry node.
// label is the pending label when the statement came wrapped in a
// LabeledStmt.
func (b *builder) stmt(s ast.Stmt, label string, next *Node) *Node {
	switch s := s.(type) {
	case *ast.LabeledStmt:
		return b.stmt(s.Stmt, s.Label.Name, next)

	case *ast.BlockStmt:
		return b.stmts(s.List, next)

	case *ast.ReturnStmt:
		n := b.node(s)
		n.Return = true
		return n

	case *ast.BranchStmt:
		n := b.node(s)
		switch s.Tok.String() {
		case "break":
			if t := b.target(s, true); t != nil {
				n.Succs = []*Node{t}
			}
		case "continue":
			if t := b.target(s, false); t != nil {
				n.Succs = []*Node{t}
			}
		case "goto":
			b.g.Unsupported = true
			n.Succs = []*Node{next}
		case "fallthrough":
			// Handled structurally by the switch builder; a stray one is
			// a compile error anyway.
			n.Succs = []*Node{next}
		}
		return n

	case *ast.IfStmt:
		n := b.node(s)
		thenEntry := b.stmts(s.Body.List, next)
		elseEntry := next
		if s.Else != nil {
			elseEntry = b.stmt(s.Else, "", next)
		}
		n.Succs = []*Node{thenEntry, elseEntry}
		return n

	case *ast.ForStmt:
		head := b.node(s)
		exit := &Node{LoopExit: s, Succs: []*Node{next}}
		b.push(label, true, exit, head)
		bodyEntry := b.stmts(s.Body.List, b.postThen(s, head))
		b.pop()
		head.Succs = []*Node{bodyEntry}
		if s.Cond != nil {
			head.Succs = append(head.Succs, exit)
		}
		return head

	case *ast.RangeStmt:
		head := b.node(s)
		exit := &Node{LoopExit: s, Succs: []*Node{next}}
		b.push(label, true, exit, head)
		bodyEntry := b.stmts(s.Body.List, head)
		b.pop()
		head.Succs = []*Node{bodyEntry, exit}
		return head

	case *ast.SwitchStmt:
		return b.switchLike(s, label, caseBodies(s.Body), next)
	case *ast.TypeSwitchStmt:
		return b.switchLike(s, label, caseBodies(s.Body), next)

	case *ast.SelectStmt:
		head := b.node(s)
		exit := &Node{Succs: []*Node{next}}
		b.push(label, false, exit, nil)
		hasDefault := false
		for _, c := range s.Body.List {
			cc := c.(*ast.CommClause)
			body := cc.Body
			if cc.Comm == nil {
				hasDefault = true
			} else {
				// The comm op itself (the send/recv that fired) leads the
				// case body.
				body = append([]ast.Stmt{cc.Comm}, body...)
			}
			head.Succs = append(head.Succs, b.stmts(body, exit))
		}
		b.pop()
		if len(head.Succs) == 0 && !hasDefault {
			// select{} blocks forever: no successors.
		}
		return head

	case *ast.DeferStmt:
		b.g.Defers = append(b.g.Defers, s)
		n := b.node(s)
		n.Succs = []*Node{next}
		return n

	case *ast.ExprStmt:
		n := b.node(s)
		if isTerminalCall(s.X) {
			return n // panic/os.Exit: the path ends without returning
		}
		n.Succs = []*Node{next}
		return n

	default:
		// Assignments, sends, declarations, go statements, inc/dec,
		// empty statements: straight-line flow.
		n := b.node(s)
		n.Succs = []*Node{next}
		return n
	}
}

// postThen wires a for statement's post statement (if any) back to the
// head, returning the continue target.
func (b *builder) postThen(s *ast.ForStmt, head *Node) *Node {
	if s.Post == nil {
		return head
	}
	post := b.node(s.Post)
	post.Succs = []*Node{head}
	return post
}

// switchLike builds switch/type-switch flow: header to every case entry
// (and past the switch when there is no default), case bodies to the
// break target, fallthrough structurally to the next case body.
func (b *builder) switchLike(s ast.Stmt, label string, cases []caseBody, next *Node) *Node {
	head := b.node(s)
	exit := &Node{Succs: []*Node{next}}
	b.push(label, false, exit, nil)
	hasDefault := false
	// Build in reverse so each case knows its fallthrough successor.
	entries := make([]*Node, len(cases))
	nextCaseEntry := exit
	for i := len(cases) - 1; i >= 0; i-- {
		c := cases[i]
		if c.isDefault {
			hasDefault = true
		}
		entries[i] = b.stmtsWithFallthrough(c.body, exit, nextCaseEntry)
		nextCaseEntry = entries[i]
	}
	b.pop()
	head.Succs = append(head.Succs, entries...)
	if !hasDefault {
		head.Succs = append(head.Succs, exit)
	}
	return head
}

// stmtsWithFallthrough is stmts, but a trailing fallthrough flows to the
// next case body instead of out of the switch.
func (b *builder) stmtsWithFallthrough(list []ast.Stmt, next, fallTo *Node) *Node {
	if n := len(list); n > 0 {
		if br, ok := list[n-1].(*ast.BranchStmt); ok && br.Tok.String() == "fallthrough" {
			fn := b.node(br)
			fn.Succs = []*Node{fallTo}
			return b.stmts(list[:n-1], fn)
		}
	}
	return b.stmts(list, next)
}

type caseBody struct {
	body      []ast.Stmt
	isDefault bool
}

func caseBodies(block *ast.BlockStmt) []caseBody {
	var out []caseBody
	for _, c := range block.List {
		cc := c.(*ast.CaseClause)
		out = append(out, caseBody{body: cc.Body, isDefault: cc.List == nil})
	}
	return out
}

// push/pop/target maintain the break/continue context stack.
func (b *builder) push(label string, isLoop bool, breakTo, contTo *Node) {
	b.breaks = append(b.breaks, breakable{label: label, isLoop: isLoop, breakTo: breakTo, contTo: contTo})
}

func (b *builder) pop() { b.breaks = b.breaks[:len(b.breaks)-1] }

func (b *builder) target(s *ast.BranchStmt, isBreak bool) *Node {
	want := ""
	if s.Label != nil {
		want = s.Label.Name
	}
	for i := len(b.breaks) - 1; i >= 0; i-- {
		t := b.breaks[i]
		if want != "" && t.label != want {
			continue
		}
		if !isBreak && !t.isLoop {
			continue // continue skips switch/select contexts
		}
		if isBreak {
			return t.breakTo
		}
		return t.contTo
	}
	b.g.Unsupported = true // label out of scope: give up honestly
	return nil
}

// isTerminalCall recognizes calls that never return: panic and the
// process/goroutine terminators. Paths through them need no join — the
// goroutines die with the process or the stack unwinds past the caller.
func isTerminalCall(e ast.Expr) bool {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return false
	}
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return fun.Name == "panic"
	case *ast.SelectorExpr:
		if pkg, ok := ast.Unparen(fun.X).(*ast.Ident); ok {
			switch pkg.Name + "." + fun.Sel.Name {
			case "os.Exit", "runtime.Goexit", "log.Fatal", "log.Fatalf", "log.Fatalln":
				return true
			}
		}
	}
	return false
}
