// The graph runner: dependency-ordered, wave-parallel analysis.
//
// Facts flow along import edges, so a package's analyzers may only run
// once every analyzed dependency has finished. Waves makes that order
// explicit: wave 0 holds packages importing no other analyzed package,
// wave k packages whose analyzed imports all sit in earlier waves.
// Packages within one wave cannot import each other, so RunGraph runs
// each wave's packages concurrently (bounded by GraphOptions.Parallel)
// and still presents every analyzer a fully-populated fact store for
// everything it can reach. Findings are accumulated per package and
// sorted once at the end, so the output is byte-identical for any
// parallelism level.
package analysis

import (
	"fmt"
	"sort"
	"sync"
)

// GraphOptions tunes RunGraph.
type GraphOptions struct {
	// Parallel caps concurrently analyzed packages per wave; <= 1 runs
	// serially.
	Parallel int
	// Store receives exported facts; nil allocates a fresh one. The
	// vettool seeds it with decoded dependency facts.
	Store *Store
	// IncludeSuppressed retains //lint:allow-suppressed findings in the
	// result, marked Finding.Suppressed, instead of dropping them.
	IncludeSuppressed bool
	// FactsOnly runs only fact-producing analyzers (and their requires)
	// and reports nothing — the vettool's dependency-unit mode.
	FactsOnly bool
}

// Expand returns analyzers plus their transitive Requires, deduplicated,
// in an order that runs every prerequisite before its dependents. The
// order is deterministic in the input order. Cycles panic: they are
// programming errors in the suite definition.
func Expand(analyzers []*Analyzer) []*Analyzer {
	var out []*Analyzer
	state := make(map[*Analyzer]int) // 0 unseen, 1 visiting, 2 done
	var visit func(a *Analyzer)
	visit = func(a *Analyzer) {
		switch state[a] {
		case 1:
			panic(fmt.Sprintf("analysis: Requires cycle through %s", a.Name))
		case 2:
			return
		}
		state[a] = 1
		for _, r := range a.Requires {
			visit(r)
		}
		state[a] = 2
		out = append(out, a)
	}
	for _, a := range analyzers {
		visit(a)
	}
	return out
}

// Waves partitions pkgs into dependency waves: every package's analyzed
// imports live in strictly earlier waves. Within a wave, packages are
// sorted by import path so scheduling is deterministic.
func Waves(pkgs []*Package) [][]*Package {
	byPath := make(map[string]*Package, len(pkgs))
	for _, p := range pkgs {
		byPath[p.ImportPath] = p
	}
	depth := make(map[string]int, len(pkgs))
	var depthOf func(p *Package) int
	depthOf = func(p *Package) int {
		if d, ok := depth[p.ImportPath]; ok {
			return d
		}
		// Mark before recursing: an import cycle (impossible in valid Go,
		// but be safe on broken input) bottoms out at depth 0.
		depth[p.ImportPath] = 0
		d := 0
		for _, imp := range p.Pkg.Imports() {
			if dep, ok := byPath[imp.Path()]; ok {
				if dd := depthOf(dep) + 1; dd > d {
					d = dd
				}
			}
		}
		depth[p.ImportPath] = d
		return d
	}
	max := 0
	for _, p := range pkgs {
		if d := depthOf(p); d > max {
			max = d
		}
	}
	waves := make([][]*Package, max+1)
	for _, p := range pkgs {
		waves[depth[p.ImportPath]] = append(waves[depth[p.ImportPath]], p)
	}
	for _, w := range waves {
		sort.Slice(w, func(i, j int) bool { return w[i].ImportPath < w[j].ImportPath })
	}
	return waves
}

// RunGraph applies the analyzers (expanded with their Requires) to the
// packages in dependency-wave order, threading facts through the store,
// and returns the findings sorted by position then analyzer — the same
// bytes for any Parallel setting. The returned store holds every
// exported fact; the vettool serializes it onward.
func RunGraph(pkgs []*Package, analyzers []*Analyzer, opts GraphOptions) ([]Finding, *Store, error) {
	expanded := Expand(analyzers)
	if opts.FactsOnly {
		var producers []*Analyzer
		for _, a := range expanded {
			if len(a.FactTypes) > 0 {
				producers = append(producers, a)
			}
		}
		expanded = Expand(producers)
	}
	store := opts.Store
	if store == nil {
		store = NewStore(analyzers)
	}

	var all []Finding
	for _, wave := range Waves(pkgs) {
		parallel := opts.Parallel
		if parallel > len(wave) {
			parallel = len(wave)
		}
		if parallel <= 1 {
			for _, pkg := range wave {
				fs, err := runPackage(pkg, expanded, store, opts.FactsOnly)
				if err != nil {
					return nil, nil, err
				}
				all = append(all, fs...)
			}
			continue
		}
		results := make([][]Finding, len(wave))
		errs := make([]error, len(wave))
		sem := make(chan struct{}, parallel)
		var wg sync.WaitGroup
		for i, pkg := range wave {
			wg.Add(1)
			go func(i int, pkg *Package) {
				defer wg.Done()
				sem <- struct{}{}
				defer func() { <-sem }()
				results[i], errs[i] = runPackage(pkg, expanded, store, opts.FactsOnly)
			}(i, pkg)
		}
		wg.Wait()
		for i := range wave {
			if errs[i] != nil {
				return nil, nil, errs[i]
			}
			all = append(all, results[i]...)
		}
	}

	if !opts.IncludeSuppressed {
		kept := all[:0]
		for _, f := range all {
			if !f.Suppressed {
				kept = append(kept, f)
			}
		}
		all = kept
	}
	sortFindings(all)
	return all, store, nil
}

// runPackage applies the already-expanded analyzer sequence to one
// package, resolving suppression as findings are reported.
func runPackage(pkg *Package, expanded []*Analyzer, store *Store, factsOnly bool) ([]Finding, error) {
	allow := collectAllows(pkg.Fset, pkg.Files)
	var out []Finding
	for _, a := range expanded {
		pass := &Pass{
			Analyzer:  a,
			Fset:      pkg.Fset,
			Files:     pkg.Files,
			Pkg:       pkg.Pkg,
			TypesInfo: pkg.TypesInfo,
			store:     store,
			allow:     allow,
		}
		name := a.Name
		if factsOnly {
			pass.Report = func(Diagnostic) {}
		} else {
			pass.Report = func(d Diagnostic) {
				posn := pkg.Fset.Position(d.Pos)
				out = append(out, Finding{
					Analyzer:   name,
					Pos:        posn,
					Message:    d.Message,
					Suppressed: allow.suppressed(name, posn),
				})
			}
		}
		if _, err := a.Run(pass); err != nil {
			return nil, err
		}
	}
	return out, nil
}
