// Package astq holds the small AST/type-query vocabulary shared by the
// phantomlint analyzers: stack-tracking traversal, call-target resolution,
// and method-receiver identification. Everything is stdlib go/ast +
// go/types; nothing here knows about any specific invariant.
package astq

import (
	"go/ast"
	"go/types"
)

// WalkStack traverses root in depth-first order, passing each node along
// with the stack of its ancestors (outermost first, root excluded from its
// own stack). Returning false skips the node's children.
func WalkStack(root ast.Node, fn func(n ast.Node, stack []ast.Node) bool) {
	var stack []ast.Node
	ast.Inspect(root, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		if !fn(n, stack) {
			return false
		}
		stack = append(stack, n)
		return true
	})
}

// CalleeFunc resolves the target of a call expression to the (possibly
// method) function object it invokes, or nil when the callee is not a
// statically-resolved function (a call of a function value, a conversion,
// a builtin).
func CalleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := info.Uses[id].(*types.Func)
	return fn
}

// IsPkgFunc reports whether obj is the package-level function (or any
// object) named name in the package with import path pkgPath.
func IsPkgFunc(obj types.Object, pkgPath, name string) bool {
	if obj == nil || obj.Pkg() == nil {
		return false
	}
	return obj.Pkg().Path() == pkgPath && obj.Name() == name
}

// MethodOn reports whether fn is a method whose receiver's named type is
// typeName declared in pkgPath (pointer receivers match too).
func MethodOn(fn *types.Func, pkgPath, typeName string) bool {
	if fn == nil {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	return NamedTypeIs(sig.Recv().Type(), pkgPath, typeName)
}

// NamedTypeIs reports whether t (possibly behind pointers or aliases) is
// the named type pkgPath.typeName.
func NamedTypeIs(t types.Type, pkgPath, typeName string) bool {
	for {
		switch tt := t.(type) {
		case *types.Pointer:
			t = tt.Elem()
			continue
		case *types.Alias:
			t = types.Unalias(tt)
			continue
		case *types.Named:
			obj := tt.Obj()
			return obj != nil && obj.Pkg() != nil &&
				obj.Pkg().Path() == pkgPath && obj.Name() == typeName
		default:
			return false
		}
	}
}

// EnclosingFunc returns the body of the innermost function declaration or
// literal in stack, or nil when the node is not inside a function.
func EnclosingFunc(stack []ast.Node) *ast.BlockStmt {
	for i := len(stack) - 1; i >= 0; i-- {
		switch f := stack[i].(type) {
		case *ast.FuncDecl:
			return f.Body
		case *ast.FuncLit:
			return f.Body
		}
	}
	return nil
}

// RootIdent descends through selectors, indexes, parens and stars to the
// leftmost identifier of an expression (`a` in `a.b[i].c`), or nil.
func RootIdent(e ast.Expr) *ast.Ident {
	for {
		switch x := e.(type) {
		case *ast.Ident:
			return x
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		default:
			return nil
		}
	}
}

// Mentions reports whether the subtree rooted at n contains an identifier
// resolving (via uses or defs) to obj.
func Mentions(info *types.Info, n ast.Node, obj types.Object) bool {
	found := false
	ast.Inspect(n, func(c ast.Node) bool {
		if found {
			return false
		}
		if id, ok := c.(*ast.Ident); ok {
			if info.Uses[id] == obj || info.Defs[id] == obj {
				found = true
				return false
			}
		}
		return true
	})
	return found
}
