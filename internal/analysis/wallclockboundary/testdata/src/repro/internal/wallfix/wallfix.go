// Package wallfix exercises the wallclockboundary analyzer: simulation
// packages importing real networking or the observability plane are
// findings; deterministic stdlib imports and suppressed lines are not.
package wallfix

import (
	"fmt"
	_ "net"                // want `import net crosses the sim/wall-clock boundary`
	_ "net/http"           // want `import net/http crosses the sim/wall-clock boundary`
	_ "net/http/httptest"  // want `import net/http/httptest crosses the sim/wall-clock boundary`
	"time"

	_ "repro/internal/obs/serve" // want `import repro/internal/obs/serve crosses the sim/wall-clock boundary`

	// Transitive: netprobe itself is exempt (bench), but its NetFact
	// travels to every sim importer.
	_ "repro/internal/bench/netprobe" // want `import repro/internal/bench/netprobe transitively links the wall-clock side \(repro/internal/bench/netprobe → net\)`

	//lint:allow wallclockboundary -- fixture demonstrates suppression
	_ "net/http/pprof"
)

// Good: deterministic stdlib imports stay fine — the analyzer bans the
// network boundary, not the standard library.
func fine() string {
	return fmt.Sprint(3 * time.Second)
}
