// Package netprobe links real networking from the exempt bench subtree —
// no finding here, but the NetFact it exports is what flags everyone who
// imports it from simulation code.
package netprobe

import "net"

// Listen opens a real socket.
func Listen() (net.Listener, error) {
	return net.Listen("tcp", "127.0.0.1:0")
}
