// Package main exercises the wallclockboundary scope: cmd/* binaries own
// the wall-clock side and may import networking and the serve plane.
package main

import (
	"net/http"

	_ "repro/internal/obs/serve"
)

func main() {
	_ = http.DefaultServeMux
}
