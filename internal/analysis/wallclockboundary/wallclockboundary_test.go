package wallclockboundary_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/wallclockboundary"
)

func TestWallClockBoundary(t *testing.T) {
	analysistest.Run(t, "testdata", wallclockboundary.Analyzer,
		"repro/internal/bench/netprobe", // exempt subtree: fact only, no findings
		"repro/internal/wallfix",        // banned imports, allowed imports, a suppression
		"repro/cmd/wallfixcmd",   // wall-clock side: no findings expected
	)
}
