// Package wallclockboundary keeps simulation packages on their side of
// the sim/wall-clock seam: they must not import the live observability
// plane (repro/internal/obs/serve) or real networking (net, net/http/...).
//
// The reproduction's layering puts everything nondeterministic — HTTP
// serving, real sockets, pprof — on the wall-clock side, wired up by
// cmd/* binaries through read hooks. The dependency arrow points one way:
// serve reads simulation state (obs.Accumulator.State), simulation code
// never calls out to serve. If a simulation package imported net/http,
// real I/O and its scheduling could leak into code whose results must be
// a pure function of (seed, config), and the package would stop building
// in environments without network stacks. This analyzer makes the arrow
// mechanical, the import-graph complement of simdeterminism's ban on
// wall-clock reads.
//
// Since phantomlint v2 the ban is transitive: every repro/internal
// package that links the wall-clock side — directly or through its own
// imports — exports a NetFact package fact recording the shortest import
// chain, and a simulation package importing any fact-carrying package is
// flagged with that chain. Without this, one helper package importing
// net would launder the boundary for everyone who imports the helper.
//
// Out of scope for reporting: everything outside repro/internal/* (cmd/*
// and examples/* own the wall-clock side), repro/internal/bench
// (harness), and repro/internal/analysis (the linter itself).
// repro/internal/obs/serve is the one internal package that lives on the
// wall-clock side by charter, so it is exempt — and everything else is
// banned from importing it, which keeps the exemption from spreading.
// Facts, by contrast, are computed for ALL repro/internal packages,
// exempt ones included: that is exactly where boundary-crossing helpers
// live.
package wallclockboundary

import (
	"fmt"
	"go/types"
	"strconv"
	"strings"

	"repro/internal/analysis"
)

// NetFact marks a package that links the wall-clock side, with the
// import chain that gets there (e.g. "repro/internal/bench/netprobe →
// net").
type NetFact struct {
	Via string `json:"via"`
}

// AFact marks NetFact as a serializable analysis fact.
func (*NetFact) AFact() {}

// Analyzer is the wallclockboundary check.
var Analyzer = &analysis.Analyzer{
	Name: "wallclockboundary",
	Doc: "ban sim packages from importing the observability plane or real networking " +
		"(repro/internal/obs/serve, net, net/http/...), directly or transitively; " +
		"serving belongs on the wall-clock side",
	FactTypes: []analysis.Fact{(*NetFact)(nil)},
	Run:       run,
}

// servePkg is the wall-clock-side observability plane.
const servePkg = "repro/internal/obs/serve"

// allowedPrefixes exempt whole package subtrees from reporting (facts
// are still computed for them).
var allowedPrefixes = []string{
	"repro/internal/bench",
	"repro/internal/analysis",
	servePkg,
}

// scoped reports whether findings apply to the package at path.
func scoped(path string) bool {
	if !strings.HasPrefix(path, "repro/internal/") {
		return false
	}
	for _, p := range allowedPrefixes {
		if path == p || strings.HasPrefix(path, p+"/") {
			return false
		}
	}
	return true
}

// banned explains why an import path is off-limits for simulation code,
// or returns "" when it is fine.
func banned(path string) string {
	switch {
	case path == servePkg:
		return "the observability plane reads simulation state, never the reverse"
	case path == "net", path == "net/http", strings.HasPrefix(path, "net/http/"):
		return "real networking is nondeterministic"
	}
	return ""
}

func run(pass *analysis.Pass) (interface{}, error) {
	path := pass.Pkg.Path()
	if !strings.HasPrefix(path, "repro/internal/") {
		return nil, nil
	}
	report := scoped(path)
	via := "" // shortest chain to the wall-clock side, first import wins
	for _, f := range pass.Files {
		// Defensive: the standalone driver never loads _test.go files, but
		// fixture harnesses could.
		if name := pass.Fset.Position(f.Pos()).Filename; strings.HasSuffix(name, "_test.go") {
			continue
		}
		for _, imp := range f.Imports {
			impPath, err := strconv.Unquote(imp.Path.Value)
			if err != nil {
				continue
			}
			// A justified //lint:allow on the import is a sanitizer: it
			// neither reports nor exports the taint onward.
			if pass.Allowed("wallclockboundary", imp.Pos()) {
				continue
			}
			if why := banned(impPath); why != "" {
				if via == "" {
					via = impPath
				}
				if report {
					pass.Reportf(imp.Pos(), fmt.Sprintf(
						"import %s crosses the sim/wall-clock boundary (%s): keep serving in cmd/ or %s",
						impPath, why, servePkg))
				}
				continue
			}
			// Transitive: an internal dependency that carries a NetFact
			// links the wall-clock side for everyone importing it.
			if strings.HasPrefix(impPath, "repro/internal/") {
				dep := importOf(pass.Pkg, impPath)
				var fact NetFact
				if dep == nil || !pass.ImportPackageFact(dep, &fact) {
					continue
				}
				chain := impPath + " → " + fact.Via
				if via == "" {
					via = chain
				}
				if report {
					pass.Reportf(imp.Pos(), fmt.Sprintf(
						"import %s transitively links the wall-clock side (%s): keep serving in cmd/ or %s",
						impPath, chain, servePkg))
				}
			}
		}
	}
	if via != "" {
		pass.ExportPackageFact(&NetFact{Via: via})
	}
	return nil, nil
}

// importOf finds the types.Package for path among the package's direct
// imports.
func importOf(pkg *types.Package, path string) *types.Package {
	for _, imp := range pkg.Imports() {
		if imp.Path() == path {
			return imp
		}
	}
	return nil
}
