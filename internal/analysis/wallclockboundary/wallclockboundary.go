// Package wallclockboundary keeps simulation packages on their side of
// the sim/wall-clock seam: they must not import the live observability
// plane (repro/internal/obs/serve) or real networking (net, net/http/...).
//
// The reproduction's layering puts everything nondeterministic — HTTP
// serving, real sockets, pprof — on the wall-clock side, wired up by
// cmd/* binaries through read hooks. The dependency arrow points one way:
// serve reads simulation state (obs.Accumulator.State), simulation code
// never calls out to serve. If a simulation package imported net/http,
// real I/O and its scheduling could leak into code whose results must be
// a pure function of (seed, config), and the package would stop building
// in environments without network stacks. This analyzer makes the arrow
// mechanical, the import-graph complement of simdeterminism's ban on
// wall-clock reads.
//
// Out of scope: everything outside repro/internal/* (cmd/* and examples/*
// own the wall-clock side), repro/internal/bench (harness), and
// repro/internal/analysis (the linter itself). repro/internal/obs/serve
// is the one internal package that lives on the wall-clock side by
// charter, so it is exempt — and everything else is banned from importing
// it, which keeps the exemption from spreading.
package wallclockboundary

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/analysis"
)

// Analyzer is the wallclockboundary check.
var Analyzer = &analysis.Analyzer{
	Name: "wallclockboundary",
	Doc: "ban sim packages from importing the observability plane or real networking " +
		"(repro/internal/obs/serve, net, net/http/...); serving belongs on the wall-clock side",
	Run: run,
}

// servePkg is the wall-clock-side observability plane.
const servePkg = "repro/internal/obs/serve"

// allowedPrefixes exempt whole package subtrees from the check.
var allowedPrefixes = []string{
	"repro/internal/bench",
	"repro/internal/analysis",
	servePkg,
}

// scoped reports whether the analyzer applies to the package at path.
func scoped(path string) bool {
	if !strings.HasPrefix(path, "repro/internal/") {
		return false
	}
	for _, p := range allowedPrefixes {
		if path == p || strings.HasPrefix(path, p+"/") {
			return false
		}
	}
	return true
}

// banned explains why an import path is off-limits for simulation code,
// or returns "" when it is fine.
func banned(path string) string {
	switch {
	case path == servePkg:
		return "the observability plane reads simulation state, never the reverse"
	case path == "net", path == "net/http", strings.HasPrefix(path, "net/http/"):
		return "real networking is nondeterministic"
	}
	return ""
}

func run(pass *analysis.Pass) (interface{}, error) {
	if !scoped(pass.Pkg.Path()) {
		return nil, nil
	}
	for _, f := range pass.Files {
		// Defensive: the standalone driver never loads _test.go files, but
		// fixture harnesses could.
		if name := pass.Fset.Position(f.Pos()).Filename; strings.HasSuffix(name, "_test.go") {
			continue
		}
		for _, imp := range f.Imports {
			path, err := strconv.Unquote(imp.Path.Value)
			if err != nil {
				continue
			}
			if why := banned(path); why != "" {
				pass.Reportf(imp.Pos(), fmt.Sprintf(
					"import %s crosses the sim/wall-clock boundary (%s): keep serving in cmd/ or %s",
					path, why, servePkg))
			}
		}
	}
	return nil, nil
}
