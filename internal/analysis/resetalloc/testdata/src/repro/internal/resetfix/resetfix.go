// Package resetfix exercises the resetalloc analyzer: fresh map/slice/
// object allocations assigned to receiver fields inside Reset are
// findings; in-place reinitialisation, scalar assignments, locals,
// nil-guarded first construction, non-Reset methods and suppressed lines
// are not.
package resetfix

type inner struct{ v int }

type pool struct {
	m     map[string]int
	s     []int
	obj   *inner
	alt   *inner
	ch    chan int
	n     int
	label string
}

func (p *pool) Reset() {
	p.m = make(map[string]int)     // want `fresh map to p\.m.*clear`
	p.s = make([]int, 0, 8)        // want `fresh slice to p\.s.*truncate`
	p.obj = &inner{}               // want `fresh object to p\.obj.*in place`
	p.alt = new(inner)             // want `fresh object to p\.alt.*in place`
	p.ch = make(chan int, 4)       // want `fresh channel to p\.ch`
	p.m = map[string]int{"a": 1}   // want `fresh map to p\.m.*clear`
	p.s = []int{1, 2, 3}           // want `fresh slice to p\.s.*truncate`
	p.n = 0                        // fine: scalar
	p.label = ""                   // fine: scalar
	local := make([]int, 4)        // fine: local, not a receiver field
	_ = local
}

// The in-place idiom the analyzer exists to steer toward.
func (p *pool) ResetInPlace() {} // keeps gofmt happy about the next method

type good struct {
	m map[string]int
	s []int
}

func (g *good) Reset() {
	clear(g.m)     // fine: in-place clear
	g.s = g.s[:0]  // fine: truncation keeps the backing array
	if g.m == nil {
		g.m = make(map[string]int) // fine: nil-guarded first construction
	}
}

type grower struct{ m map[string]int }

// Allocation outside a Reset path is none of this analyzer's business.
func (g *grower) Grow() {
	g.m = make(map[string]int) // fine: not Reset
}

type handoff struct{ s []int }

func (h *handoff) Reset() {
	//lint:allow resetalloc -- previous slice ownership handed to the caller
	h.s = make([]int, 0, 4) // fine: explicitly suppressed
}
