// Package resetalloc enforces the arena-recycling discipline from the
// testbed-reuse work: a method named Reset exists so a pooled object can
// be reparameterised *in place*, so its body must not replace receiver
// fields with freshly allocated maps, slices or objects when an in-place
// variant exists:
//
//   - `r.m = make(map...)` / map literals → `clear(r.m)` empties the
//     existing table without allocating;
//   - `r.s = make([]T, ...)` / slice literals → `r.s = r.s[:0]` keeps the
//     backing array warm;
//   - `r.f = &T{...}` / `new(T)` → reinitialise the pooled object the
//     field already points at.
//
// Every such assignment silently re-introduces per-home allocation into
// the fleet's zero-alloc steady state — the exact regression class the
// BenchmarkFleetCampaignReuse harness exists to catch, surfaced here at
// compile time instead of bench time. A first-construction fallback
// (`if r.m == nil { r.m = make(...) }`) is legitimate and recognised; a
// deliberate fresh allocation (e.g. handing ownership of the old value
// away) is suppressed with `//lint:allow resetalloc -- reason`.
package resetalloc

import (
	"fmt"
	"go/ast"
	"go/types"

	"repro/internal/analysis"
)

// Analyzer is the resetalloc check.
var Analyzer = &analysis.Analyzer{
	Name: "resetalloc",
	Doc: "flag Reset methods that assign freshly allocated maps/slices/objects to receiver fields " +
		"when an in-place variant (clear, truncation, pooled reinit) exists",
	Run: run,
}

func run(pass *analysis.Pass) (interface{}, error) {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Recv == nil || fd.Name.Name != "Reset" || fd.Body == nil {
				continue
			}
			recv := receiverVar(pass.TypesInfo, fd)
			if recv == nil {
				continue
			}
			checkResetBody(pass, fd, recv)
		}
	}
	return nil, nil
}

// receiverVar returns the receiver's object, or nil for an unnamed
// receiver (which cannot have its fields assigned).
func receiverVar(info *types.Info, fd *ast.FuncDecl) types.Object {
	if len(fd.Recv.List) == 0 || len(fd.Recv.List[0].Names) == 0 {
		return nil
	}
	return info.Defs[fd.Recv.List[0].Names[0]]
}

func checkResetBody(pass *analysis.Pass, fd *ast.FuncDecl, recv types.Object) {
	// nilGuarded collects fields assigned under an `if r.f == nil` check:
	// the lazily-built first-construction fallback, not a recycling leak.
	nilGuarded := make(map[string]bool)
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		ifs, ok := n.(*ast.IfStmt)
		if !ok {
			return true
		}
		if field := nilCheckedField(pass.TypesInfo, ifs.Cond, recv); field != "" {
			nilGuarded[field] = true
		}
		return true
	})

	ast.Inspect(fd.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		for i, rhs := range as.Rhs {
			if i >= len(as.Lhs) {
				break
			}
			sel, ok := ast.Unparen(as.Lhs[i]).(*ast.SelectorExpr)
			if !ok {
				continue
			}
			id, ok := ast.Unparen(sel.X).(*ast.Ident)
			if !ok || pass.TypesInfo.Uses[id] != recv {
				continue
			}
			if nilGuarded[sel.Sel.Name] {
				continue
			}
			kind, hint := allocKind(pass.TypesInfo, rhs)
			if kind == "" {
				continue
			}
			pass.Reportf(rhs.Pos(), fmt.Sprintf(
				"Reset assigns a fresh %s to %s.%s; %s so the pooled arena stays alloc-free",
				kind, id.Name, sel.Sel.Name, hint))
		}
		return true
	})
}

// nilCheckedField returns the field name when cond is `r.f == nil` (either
// operand order), else "".
func nilCheckedField(info *types.Info, cond ast.Expr, recv types.Object) string {
	be, ok := ast.Unparen(cond).(*ast.BinaryExpr)
	if !ok || be.Op.String() != "==" {
		return ""
	}
	for _, pair := range [2][2]ast.Expr{{be.X, be.Y}, {be.Y, be.X}} {
		sel, ok := ast.Unparen(pair[0]).(*ast.SelectorExpr)
		if !ok {
			continue
		}
		id, ok := ast.Unparen(sel.X).(*ast.Ident)
		if !ok || info.Uses[id] != recv {
			continue
		}
		if other, ok := ast.Unparen(pair[1]).(*ast.Ident); ok && other.Name == "nil" {
			return sel.Sel.Name
		}
	}
	return ""
}

// allocKind classifies rhs as a fresh allocation and names the in-place
// alternative, or returns "" when the assignment is allocation-free.
func allocKind(info *types.Info, rhs ast.Expr) (kind, hint string) {
	rhs = ast.Unparen(rhs)
	switch v := rhs.(type) {
	case *ast.CallExpr:
		id, ok := ast.Unparen(v.Fun).(*ast.Ident)
		if !ok {
			return "", ""
		}
		if _, builtin := info.Uses[id].(*types.Builtin); !builtin {
			return "", ""
		}
		switch id.Name {
		case "make":
			if len(v.Args) == 0 {
				return "", ""
			}
			return containerKind(info.TypeOf(v.Args[0]))
		case "new":
			return "object", "reinitialise the pooled object in place"
		}
	case *ast.UnaryExpr:
		if v.Op.String() == "&" {
			if _, ok := ast.Unparen(v.X).(*ast.CompositeLit); ok {
				return "object", "reinitialise the pooled object in place"
			}
		}
	case *ast.CompositeLit:
		return containerKind(info.TypeOf(v))
	}
	return "", ""
}

func containerKind(t types.Type) (kind, hint string) {
	if t == nil {
		return "", ""
	}
	switch t.Underlying().(type) {
	case *types.Map:
		return "map", "empty the existing table with clear(...)"
	case *types.Slice:
		return "slice", "truncate the existing backing array with s = s[:0]"
	case *types.Chan:
		return "channel", "drain and reuse the existing channel"
	}
	return "", ""
}
