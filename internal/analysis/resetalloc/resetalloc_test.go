package resetalloc_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/resetalloc"
)

func TestResetAlloc(t *testing.T) {
	analysistest.Run(t, "testdata", resetalloc.Analyzer, "repro/internal/resetfix")
}
