// Package goroutineguard flags goroutine launches in simulation packages
// whose exit is not tied to anything — no stop channel, no context, no
// draining receiver on every return path of the spawner. The motivating
// bug is PR 9's collect loop: workers performed a bare send on an
// unbuffered results channel while the collector could return early on a
// checkpoint error, leaving every in-flight worker blocked on its send
// for the life of the process. One goroutine per failed campaign, forever.
//
// The check is deliberately structural, not a whole-program escape
// analysis. A launch is hazardous when ALL of the following hold:
//
//   - the goroutine body (a function literal, or a same-package function
//     with its channel arguments mapped to parameters) performs a bare
//     send — a send statement that is not the comm clause of a
//     multi-clause select — on some channel C;
//   - C is local to the spawning function: created there by make(chan T)
//     with no buffer (or buffer 0) and never escaping it (not returned,
//     not stored, not passed to anything but the spawn calls themselves
//     and close/len/cap);
//   - the spawner does NOT consume C on every control-flow path from the
//     launch statement to a return: consuming means a receive <-C, a
//     `for range C` loop running to completion (reaching its synthetic
//     loop-exit node, not merely being entered), or a deferred receive.
//
// Each escape hatch is a real synchronization story: a select with a
// stop/context case gives the goroutine its own exit; a buffer bounds
// the block; an escaping channel has receivers this function cannot see;
// a drain on every path empties the channel before the spawner leaves.
// Separately, a goroutine body that runs `for { ... }` with no return,
// break, or terminal call is flagged as unbounded: nothing ever ends it.
package goroutineguard

import (
	"fmt"
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"strings"

	"repro/internal/analysis"
	"repro/internal/analysis/astq"
	"repro/internal/analysis/ctrlflow"
	"repro/internal/analysis/simscope"
)

// Analyzer is the goroutineguard check.
var Analyzer = &analysis.Analyzer{
	Name: "goroutineguard",
	Doc: "flag goroutine launches whose exit is untied: bare sends on unbuffered " +
		"function-local channels not drained on every return path of the spawner, " +
		"and unbounded for-loops with no exit",
	Run: run,
}

func run(pass *analysis.Pass) (interface{}, error) {
	if !simscope.Sim(pass.Pkg.Path()) {
		return nil, nil
	}
	// Same-package function declarations, for go foo(ch) spawns.
	decls := make(map[types.Object]*ast.FuncDecl)
	for _, file := range pass.Files {
		for _, d := range file.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok && fd.Body != nil {
				if obj := pass.TypesInfo.Defs[fd.Name]; obj != nil {
					decls[obj] = fd
				}
			}
		}
	}
	for _, file := range pass.Files {
		if name := pass.Fset.Position(file.Pos()).Filename; strings.HasSuffix(name, "_test.go") {
			continue
		}
		for _, d := range file.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			// Every function body is a spawner unit of its own: the decl's,
			// and each nested literal's (a worker literal may itself spawn).
			for _, unit := range units(fd.Body) {
				checkUnit(pass, decls, unit)
			}
		}
	}
	return nil, nil
}

// units lists body plus every function-literal body nested inside it.
func units(body *ast.BlockStmt) []*ast.BlockStmt {
	out := []*ast.BlockStmt{body}
	ast.Inspect(body, func(n ast.Node) bool {
		if lit, ok := n.(*ast.FuncLit); ok {
			out = append(out, lit.Body)
		}
		return true
	})
	return out
}

// checkUnit analyzes one spawner body: every go statement directly inside
// it (not inside nested literals, which are their own units).
func checkUnit(pass *analysis.Pass, decls map[types.Object]*ast.FuncDecl, unit *ast.BlockStmt) {
	spawns := directGoStmts(unit)
	if len(spawns) == 0 {
		return
	}
	var cfg *ctrlflow.Graph // built lazily: most spawns have no hazard
	for _, g := range spawns {
		if pass.Allowed("goroutineguard", g.Pos()) {
			continue
		}
		body, params := goroutineBody(pass.TypesInfo, decls, g)
		if body == nil {
			continue // dynamic call or foreign function: nothing to inspect
		}
		if loop := unboundedLoop(body); loop != nil {
			pass.Reportf(g.Pos(), "goroutine can leak: body runs an unbounded for-loop with no return, break, or terminal call; tie its exit to a stop channel, context, or bounded work")
			continue
		}
		reported := make(map[types.Object]bool)
		for _, ch := range bareSendChans(pass.TypesInfo, body, params) {
			if reported[ch] {
				continue
			}
			info := classifyChan(pass, unit, spawns, ch)
			if !info.local || !info.unbuffered || info.escapes {
				continue
			}
			if drainedByDefer(pass.TypesInfo, unit, ch) {
				continue
			}
			if cfg == nil {
				cfg = ctrlflow.New(unit)
			}
			ok, _ := cfg.EveryPathHits(g, func(n *ctrlflow.Node) bool {
				return drains(pass.TypesInfo, n, ch)
			})
			if ok {
				continue
			}
			reported[ch] = true
			pass.Reportf(g.Pos(), fmt.Sprintf("goroutine can leak: bare send on unbuffered local channel %q is not received on every return path of the spawner; select the send against a stop channel or context, or drain before returning", ch.Name()))
		}
	}
}

// directGoStmts collects go statements in unit, excluding nested literals.
func directGoStmts(unit *ast.BlockStmt) []*ast.GoStmt {
	var out []*ast.GoStmt
	for _, s := range unit.List {
		ast.Inspect(s, func(n ast.Node) bool {
			if _, ok := n.(*ast.FuncLit); ok {
				return false
			}
			if g, ok := n.(*ast.GoStmt); ok {
				out = append(out, g)
				// Still descend: the spawn's literal is cut by the FuncLit
				// case above, but go f(g()) arguments could nest further.
			}
			return true
		})
	}
	return out
}

// goroutineBody resolves what the goroutine will run: a literal's body,
// or a same-package function's body with channel arguments mapped onto
// parameters (params[calleeParam] = spawner-side object).
func goroutineBody(info *types.Info, decls map[types.Object]*ast.FuncDecl, g *ast.GoStmt) (*ast.BlockStmt, map[types.Object]types.Object) {
	call := g.Call
	if lit, ok := ast.Unparen(call.Fun).(*ast.FuncLit); ok {
		return lit.Body, mapParams(info, lit.Type, call.Args)
	}
	callee := astq.CalleeFunc(info, call)
	if callee == nil {
		return nil, nil
	}
	fd := decls[callee]
	if fd == nil {
		return nil, nil
	}
	return fd.Body, mapParams(info, fd.Type, call.Args)
}

// mapParams pairs identifier arguments with the parameters receiving
// them. Variadic parameters are skipped: position no longer maps 1:1.
func mapParams(info *types.Info, ft *ast.FuncType, args []ast.Expr) map[types.Object]types.Object {
	m := make(map[types.Object]types.Object)
	if ft.Params == nil {
		return m
	}
	i := 0
	for _, field := range ft.Params.List {
		if _, variadic := field.Type.(*ast.Ellipsis); variadic {
			break
		}
		if len(field.Names) == 0 {
			i++
			continue
		}
		for _, name := range field.Names {
			if i >= len(args) {
				return m
			}
			if id, ok := ast.Unparen(args[i]).(*ast.Ident); ok {
				if pobj, aobj := info.Defs[name], info.Uses[id]; pobj != nil && aobj != nil {
					m[pobj] = aobj
				}
			}
			i++
		}
	}
	return m
}

// bareSendChans returns the spawner-side channel objects that the
// goroutine body bare-sends on: send statements outside any multi-clause
// select (a single-clause select is just a dressed-up blocking send;
// two or more clauses — including default — give the send an exit).
// Nested literals are excluded; they are separate spawner units.
func bareSendChans(info *types.Info, body *ast.BlockStmt, params map[types.Object]types.Object) []types.Object {
	var out []types.Object
	astq.WalkStack(body, func(n ast.Node, stack []ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		send, ok := n.(*ast.SendStmt)
		if !ok {
			return true
		}
		// Stack shape for a comm-clause send: ... SelectStmt, BlockStmt
		// (the select's body), CommClause, SendStmt.
		if len(stack) >= 3 {
			if cc, ok := stack[len(stack)-1].(*ast.CommClause); ok && cc.Comm == send {
				if sel, ok := stack[len(stack)-3].(*ast.SelectStmt); ok && len(sel.Body.List) >= 2 {
					return true
				}
			}
		}
		id, ok := ast.Unparen(send.Chan).(*ast.Ident)
		if !ok {
			return true
		}
		obj := info.Uses[id]
		if obj == nil {
			return true
		}
		if spawner, ok := params[obj]; ok {
			obj = spawner
		}
		out = append(out, obj)
		return true
	})
	return out
}

// chanClass is what the spawner knows about a channel variable.
type chanClass struct {
	local      bool // defined by make() inside the spawner unit
	unbuffered bool
	escapes    bool // leaves the spawner by any route other than the spawns
}

// classifyChan inspects every use of ch inside the spawner unit. Any use
// we cannot prove harmless counts as an escape — the false-positive-free
// direction: an escaped channel may have receivers elsewhere, so we stay
// silent.
func classifyChan(pass *analysis.Pass, unit *ast.BlockStmt, spawns []*ast.GoStmt, ch types.Object) chanClass {
	if ch.Pos() < unit.Pos() || ch.Pos() >= unit.End() {
		return chanClass{} // parameter or outer-scope variable: not local
	}
	spawnCalls := make(map[*ast.CallExpr]bool, len(spawns))
	for _, g := range spawns {
		spawnCalls[g.Call] = true
	}
	info := pass.TypesInfo
	var c chanClass
	astq.WalkStack(unit, func(n ast.Node, stack []ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		if info.Defs[id] == ch {
			if mk := makeExprFor(stack, id); mk != nil {
				c.local = true
				c.unbuffered = isUnbuffered(info, mk)
			} else {
				c.escapes = true // declared without a visible make: unknown
			}
			return true
		}
		if info.Uses[id] != ch {
			return true
		}
		if !harmlessUse(info, stack, id, spawnCalls) {
			c.escapes = true
		}
		return true
	})
	return c
}

// makeExprFor returns the make(...) call initializing the channel when
// id is the left-hand side of `ch := make(...)` or `var ch = make(...)`.
func makeExprFor(stack []ast.Node, id *ast.Ident) *ast.CallExpr {
	if len(stack) == 0 {
		return nil
	}
	switch p := stack[len(stack)-1].(type) {
	case *ast.AssignStmt:
		if p.Tok != token.DEFINE || len(p.Lhs) != len(p.Rhs) {
			return nil
		}
		for i, lhs := range p.Lhs {
			if lhs == id {
				return asMake(p.Rhs[i])
			}
		}
	case *ast.ValueSpec:
		for i, name := range p.Names {
			if name == id && i < len(p.Values) {
				return asMake(p.Values[i])
			}
		}
	}
	return nil
}

func asMake(e ast.Expr) *ast.CallExpr {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return nil
	}
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && id.Name == "make" {
		return call
	}
	return nil
}

// isUnbuffered: make(chan T) or make(chan T, 0). A non-constant buffer
// size reads as buffered — we cannot prove the block, so we stay silent.
func isUnbuffered(info *types.Info, mk *ast.CallExpr) bool {
	if len(mk.Args) < 2 {
		return true
	}
	tv, ok := info.Types[mk.Args[1]]
	if !ok || tv.Value == nil {
		return false
	}
	return constant.Compare(tv.Value, token.EQL, constant.MakeInt64(0))
}

// harmlessUse reports whether this occurrence of the channel keeps it
// inside the spawner's synchronization story.
func harmlessUse(info *types.Info, stack []ast.Node, id *ast.Ident, spawnCalls map[*ast.CallExpr]bool) bool {
	if len(stack) == 0 {
		return false
	}
	switch p := stack[len(stack)-1].(type) {
	case *ast.SendStmt:
		return p.Chan == id // sending the channel itself escapes it
	case *ast.UnaryExpr:
		return p.Op == token.ARROW
	case *ast.RangeStmt:
		return p.X == id
	case *ast.BinaryExpr:
		return true // ch == nil comparisons
	case *ast.CallExpr:
		if spawnCalls[p] {
			return true // handed to a spawn we analyze via param mapping
		}
		if fn, ok := ast.Unparen(p.Fun).(*ast.Ident); ok {
			switch fn.Name {
			case "close", "len", "cap":
				if _, isBuiltin := info.Uses[fn].(*types.Builtin); isBuiltin {
					return true
				}
			}
		}
		return false
	default:
		return false
	}
}

// drainedByDefer reports whether the unit defers a literal that receives
// from ch — `defer func() { <-ch }()` — a drain that runs on every
// return path by construction, no graph walk needed. (A receive in the
// defer's *arguments* evaluates at the defer statement, not at exit;
// that case is an ordinary statement receive the CFG walk already sees.)
func drainedByDefer(info *types.Info, unit *ast.BlockStmt, ch types.Object) bool {
	found := false
	ast.Inspect(unit, func(n ast.Node) bool {
		if found {
			return false
		}
		if _, ok := n.(*ast.FuncLit); ok {
			return false // defers of nested spawner units are theirs
		}
		d, ok := n.(*ast.DeferStmt)
		if !ok {
			return true
		}
		if lit, ok := ast.Unparen(d.Call.Fun).(*ast.FuncLit); ok && stmtMentionsRecv(info, lit.Body, ch) {
			found = true
		}
		return !found
	})
	return found
}

// drains reports whether the CFG node consumes from ch: a statement
// containing a receive <-ch, or the synthetic exit of a `for range ch`
// loop (entering the loop receives one value; only completing it drains).
// Compound statements are CFG head nodes whose bodies hang off separate
// nodes, so only their header expressions count — a receive buried in a
// loop body must earn its hit on the path that actually executes it.
func drains(info *types.Info, n *ctrlflow.Node, ch types.Object) bool {
	if n.LoopExit != nil {
		if rs, ok := n.LoopExit.(*ast.RangeStmt); ok {
			if id, ok := ast.Unparen(rs.X).(*ast.Ident); ok && info.Uses[id] == ch {
				return true
			}
		}
	}
	switch s := n.Stmt.(type) {
	case nil:
		return false
	case *ast.ForStmt:
		return nodeRecvs(info, s.Init, ch) || nodeRecvs(info, s.Cond, ch)
	case *ast.RangeStmt:
		return false // the head node: entered, not completed
	case *ast.IfStmt:
		return nodeRecvs(info, s.Init, ch) || nodeRecvs(info, s.Cond, ch)
	case *ast.SwitchStmt:
		return nodeRecvs(info, s.Init, ch) || nodeRecvs(info, s.Tag, ch)
	case *ast.TypeSwitchStmt:
		return nodeRecvs(info, s.Init, ch)
	case *ast.SelectStmt:
		return false // comm clauses are their own nodes
	default:
		return stmtMentionsRecv(info, n.Stmt, ch)
	}
}

// nodeRecvs is stmtMentionsRecv tolerating nil header parts.
func nodeRecvs(info *types.Info, n ast.Node, ch types.Object) bool {
	if n == nil {
		return false
	}
	return stmtMentionsRecv(info, n, ch)
}

// stmtMentionsRecv looks for <-ch inside stmt, not descending into
// nested function literals (a receive inside another goroutine is that
// goroutine's business, not a drain on this path).
func stmtMentionsRecv(info *types.Info, stmt ast.Node, ch types.Object) bool {
	found := false
	ast.Inspect(stmt, func(n ast.Node) bool {
		if found {
			return false
		}
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		u, ok := n.(*ast.UnaryExpr)
		if !ok || u.Op != token.ARROW {
			return true
		}
		if id, ok := ast.Unparen(u.X).(*ast.Ident); ok && info.Uses[id] == ch {
			found = true
			return false
		}
		return true
	})
	return found
}

// unboundedLoop finds a `for { ... }` in the goroutine body (outside
// nested literals) whose body contains no return, break, goto, or
// terminal call — nothing ever ends it.
func unboundedLoop(body *ast.BlockStmt) *ast.ForStmt {
	var hit *ast.ForStmt
	ast.Inspect(body, func(n ast.Node) bool {
		if hit != nil {
			return false
		}
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		f, ok := n.(*ast.ForStmt)
		if !ok || f.Cond != nil {
			return true
		}
		if !hasExit(f.Body) {
			hit = f
			return false
		}
		return true
	})
	return hit
}

// hasExit reports whether the loop body can leave the loop: a return,
// break, goto, or a call that never returns. Nested for/range loops may
// own their breaks, but resolving break targets here buys little —
// treating any break as an exit only errs toward silence.
func hasExit(body *ast.BlockStmt) bool {
	exit := false
	ast.Inspect(body, func(n ast.Node) bool {
		if exit {
			return false
		}
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.ReturnStmt:
			exit = true
		case *ast.BranchStmt:
			if tok := n.Tok.String(); tok == "break" || tok == "goto" {
				exit = true
			}
		case *ast.CallExpr:
			if id, ok := ast.Unparen(n.Fun).(*ast.Ident); ok && id.Name == "panic" {
				exit = true
			}
			if sel, ok := ast.Unparen(n.Fun).(*ast.SelectorExpr); ok {
				if pkg, ok := ast.Unparen(sel.X).(*ast.Ident); ok {
					switch pkg.Name + "." + sel.Sel.Name {
					case "os.Exit", "runtime.Goexit", "log.Fatal", "log.Fatalf", "log.Fatalln":
						exit = true
					}
				}
			}
		}
		return !exit
	})
	return exit
}
