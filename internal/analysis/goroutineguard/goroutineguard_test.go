package goroutineguard_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/goroutineguard"
)

func TestGoroutineGuard(t *testing.T) {
	analysistest.Run(t, "testdata", goroutineguard.Analyzer, "repro/internal/gofix")
}
