// Package gofix is the goroutineguard fixture. collectLeak reproduces
// the PR 9 checkpoint-failure leak byte-for-byte in miniature; the other
// functions walk the rule's escape hatches one at a time so each stays
// an escape on purpose, not by accident.
package gofix

import "sync"

func work() int              { return 1 }
func checkpoint(int) error   { return nil }
func step() error            { return nil }
func poll()                  {}
func prepare() int           { return 0 }

// collectLeak is the PR 9 pre-fix shape: workers bare-send on an
// unbuffered local channel, and the collector's early return on a
// checkpoint error abandons the range before it completes — every
// in-flight worker blocks on its send forever.
func collectLeak(jobs []int) error {
	results := make(chan int)
	var wg sync.WaitGroup
	for range jobs {
		wg.Add(1)
		go func() { // want `bare send on unbuffered local channel "results" is not received on every return path`
			defer wg.Done()
			results <- work()
		}()
	}
	go func() {
		wg.Wait()
		close(results)
	}()
	for r := range results {
		if err := checkpoint(r); err != nil {
			return err
		}
	}
	return nil
}

// collectFixed is the PR 9 post-fix shape: the send is selected against
// a stop channel, so the worker exits when the collector gives up.
func collectFixed(jobs []int) error {
	results := make(chan int)
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for range jobs {
		wg.Add(1)
		go func() {
			defer wg.Done()
			select {
			case results <- work():
			case <-stop:
			}
		}()
	}
	go func() {
		wg.Wait()
		close(results)
	}()
	for r := range results {
		if err := checkpoint(r); err != nil {
			close(stop)
			return err
		}
	}
	return nil
}

// collectBuffered bounds the block with capacity: every worker's single
// send completes even if nobody ever receives.
func collectBuffered(jobs []int) error {
	results := make(chan int, len(jobs))
	for range jobs {
		go func() {
			results <- work()
		}()
	}
	for range jobs {
		if err := checkpoint(<-results); err != nil {
			return err
		}
	}
	return nil
}

// collectDrained ranges the channel to completion on every path: errors
// are recorded but the loop keeps consuming, so no worker is abandoned.
func collectDrained(jobs []int) error {
	results := make(chan int)
	var wg sync.WaitGroup
	for range jobs {
		wg.Add(1)
		go func() {
			defer wg.Done()
			results <- work()
		}()
	}
	go func() {
		wg.Wait()
		close(results)
	}()
	var firstErr error
	for r := range results {
		if err := checkpoint(r); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

// firstResult drains through a deferred receive, which runs on every
// return path by construction.
func firstResult() int {
	result := make(chan int)
	go func() {
		result <- work()
	}()
	defer func() { <-result }()
	return prepare()
}

// resultsChan hands the channel to the caller: receivers exist beyond
// this function's view, so the guard stays silent.
func resultsChan(jobs []int) <-chan int {
	results := make(chan int)
	go func() {
		for _, j := range jobs {
			results <- j
		}
		close(results)
	}()
	return results
}

// spawnTicker launches a loop nothing ever ends: no return, no break,
// no stop signal.
func spawnTicker() {
	go func() { // want `unbounded for-loop with no return, break, or terminal call`
		for {
			poll()
		}
	}()
}

// runNamed spawns a named same-package function; the taint travels
// through the parameter mapping: out inside produce is results here,
// and the early return on a step error abandons the drain loop.
func runNamed(n int) error {
	results := make(chan int)
	for i := 0; i < n; i++ {
		go produce(results, i) // want `bare send on unbuffered local channel "results" is not received on every return path`
	}
	for i := 0; i < n; i++ {
		if err := step(); err != nil {
			return err
		}
		<-results
	}
	return nil
}

func produce(out chan<- int, v int) {
	out <- v
}

// allowedProbe documents a deliberate process-lifetime goroutine; the
// justified suppression keeps the guard quiet.
func allowedProbe() {
	probe := make(chan int)
	//lint:allow goroutineguard -- fire-and-forget probe; receiver attaches at process level
	go func() {
		probe <- work()
	}()
}
