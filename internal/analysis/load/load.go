// Package load turns `go list` package patterns into type-checked
// analysis.Packages using only the standard library: go list enumerates
// the packages, go/parser parses them, and go/types checks them with the
// stdlib source importer resolving imports (stdlib and module-local alike)
// from source.
//
// This is the offline stand-in for golang.org/x/tools/go/packages, which
// the module cannot vendor. Imports are always resolved through one shared
// source-importer instance, so transitive dependencies are type-checked at
// most once per Packages call and every import of a given path yields the
// identical *types.Package.
package load

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os/exec"
	"path/filepath"
	"runtime"
	"sync"

	"repro/internal/analysis"
)

// listedPackage is the subset of `go list -json` output the loader needs.
type listedPackage struct {
	ImportPath string
	Dir        string
	Name       string
	GoFiles    []string
}

// Packages loads, parses and type-checks the packages matched by patterns
// (e.g. "./..."), resolving them relative to dir. Only non-test Go files
// are analyzed: the determinism and tracing invariants govern simulation
// code, and tests legitimately use wall-clock timeouts and ad-hoc output.
func Packages(dir string, patterns ...string) ([]*analysis.Package, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	listed, err := goList(dir, patterns)
	if err != nil {
		return nil, err
	}

	fset := token.NewFileSet()

	// Parsing is embarrassingly parallel (token.FileSet serializes its own
	// file registration); type-checking stays serial below because the
	// shared source importer is not safe for concurrent use.
	var withFiles []listedPackage
	for _, lp := range listed {
		if len(lp.GoFiles) > 0 {
			withFiles = append(withFiles, lp)
		}
	}
	parsed := make([][]*ast.File, len(withFiles))
	errs := make([]error, len(withFiles))
	sem := make(chan struct{}, runtime.GOMAXPROCS(0))
	var wg sync.WaitGroup
	for i, lp := range withFiles {
		wg.Add(1)
		go func(i int, lp listedPackage) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			parsed[i], errs[i] = parsePackage(fset, lp)
		}(i, lp)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}

	imp := importer.ForCompiler(fset, "source", nil)
	var pkgs []*analysis.Package
	for i, lp := range withFiles {
		pkg, err := check(fset, imp, lp, parsed[i])
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}

// parsePackage parses one listed package's non-test files.
func parsePackage(fset *token.FileSet, lp listedPackage) ([]*ast.File, error) {
	var files []*ast.File
	for _, name := range lp.GoFiles {
		f, err := parser.ParseFile(fset, filepath.Join(lp.Dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("load: %v", err)
		}
		files = append(files, f)
	}
	return files, nil
}

func goList(dir string, patterns []string) ([]listedPackage, error) {
	args := append([]string{"list", "-json=ImportPath,Dir,Name,GoFiles"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stdout, stderr bytes.Buffer
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("load: go list %v: %v\n%s", patterns, err, stderr.Bytes())
	}
	var out []listedPackage
	dec := json.NewDecoder(&stdout)
	for {
		var lp listedPackage
		if err := dec.Decode(&lp); err != nil {
			if errors.Is(err, io.EOF) {
				break
			}
			return nil, fmt.Errorf("load: decoding go list output: %v", err)
		}
		out = append(out, lp)
	}
	return out, nil
}

// check type-checks one parsed package against the shared importer.
func check(fset *token.FileSet, imp types.Importer, lp listedPackage, files []*ast.File) (*analysis.Package, error) {
	info := NewInfo()
	conf := types.Config{Importer: imp}
	tpkg, err := conf.Check(lp.ImportPath, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("load: type-checking %s: %v", lp.ImportPath, err)
	}
	return &analysis.Package{
		ImportPath: lp.ImportPath,
		Fset:       fset,
		Files:      files,
		Pkg:        tpkg,
		TypesInfo:  info,
	}, nil
}

// NewInfo allocates the types.Info maps the analyzers rely on. Shared with
// analysistest so fixture packages carry the same resolution surface as
// real ones.
func NewInfo() *types.Info {
	return &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
}
