package analysis

import (
	"fmt"
	"go/token"
	"go/types"
	"reflect"
	"strings"
	"testing"
)

// chain builds packages a ← b ← c (c imports b imports a) plus an
// independent d, for wave and fact-flow tests.
func chainPkgs(t *testing.T) []*Package {
	t.Helper()
	fset := token.NewFileSet()
	a := checkSrc(t, fset, "chain/a", `package a; func F() {}`, nil)
	b := checkSrc(t, fset, "chain/b", `package b; import "chain/a"; func F() { a.F() }`,
		map[string]*types.Package{"chain/a": a.Pkg})
	c := checkSrc(t, fset, "chain/c", `package c; import "chain/b"; func F() { b.F() }`,
		map[string]*types.Package{"chain/a": a.Pkg, "chain/b": b.Pkg})
	d := checkSrc(t, fset, "chain/d", `package d; func F() {}`, nil)
	// Deliberately scrambled input order: Waves must sort it out.
	return []*Package{c, d, a, b}
}

func TestWaves(t *testing.T) {
	waves := Waves(chainPkgs(t))
	var got [][]string
	for _, w := range waves {
		var paths []string
		for _, p := range w {
			paths = append(paths, p.ImportPath)
		}
		got = append(got, paths)
	}
	want := [][]string{{"chain/a", "chain/d"}, {"chain/b"}, {"chain/c"}}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("waves = %v, want %v", got, want)
	}
}

func TestExpand(t *testing.T) {
	base := &Analyzer{Name: "base", Run: func(*Pass) (interface{}, error) { return nil, nil }}
	mid := &Analyzer{Name: "mid", Requires: []*Analyzer{base}, Run: base.Run}
	top := &Analyzer{Name: "top", Requires: []*Analyzer{mid, base}, Run: base.Run}

	var names []string
	for _, a := range Expand([]*Analyzer{top}) {
		names = append(names, a.Name)
	}
	if want := []string{"base", "mid", "top"}; !reflect.DeepEqual(names, want) {
		t.Errorf("Expand order = %v, want %v", names, want)
	}
}

// markEveryFunc reports one finding per package-level function and
// exports a noteFact naming the package.
func markEveryFunc(name string) *Analyzer {
	var a *Analyzer
	a = &Analyzer{
		Name:      name,
		FactTypes: []Fact{(*noteFact)(nil)},
		Run: func(pass *Pass) (interface{}, error) {
			scope := pass.Pkg.Scope()
			for _, n := range scope.Names() {
				if fn, ok := scope.Lookup(n).(*types.Func); ok {
					pass.Reportf(fn.Pos(), "func "+n+" in "+pass.Pkg.Path())
					pass.ExportObjectFact(fn, &noteFact{Note: pass.Pkg.Path() + "." + n})
				}
			}
			return nil, nil
		},
	}
	return a
}

func TestRunGraphDeterministicAcrossParallelism(t *testing.T) {
	serial, _, err := RunGraph(chainPkgs(t), []*Analyzer{markEveryFunc("mark")}, GraphOptions{Parallel: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(serial) != 4 {
		t.Fatalf("want 4 findings, got %d", len(serial))
	}
	for trial := 0; trial < 5; trial++ {
		par, _, err := RunGraph(chainPkgs(t), []*Analyzer{markEveryFunc("mark")}, GraphOptions{Parallel: 8})
		if err != nil {
			t.Fatal(err)
		}
		// Positions differ between fresh filesets, so compare the stable
		// parts: analyzer, message, order.
		for i := range serial {
			if par[i].Message != serial[i].Message || par[i].Analyzer != serial[i].Analyzer {
				t.Fatalf("trial %d: finding %d differs: %+v vs %+v", trial, i, par[i], serial[i])
			}
		}
	}
}

// readDepFacts reports, for each import, the fact its dependency's F
// carries — proving facts flow down waves.
func readDepFacts() *Analyzer {
	producer := markEveryFunc("producer")
	return &Analyzer{
		Name:     "reader",
		Requires: []*Analyzer{producer},
		Run: func(pass *Pass) (interface{}, error) {
			for _, imp := range pass.Pkg.Imports() {
				fn, ok := imp.Scope().Lookup("F").(*types.Func)
				if !ok {
					continue
				}
				var nf noteFact
				if pass.ImportObjectFact(fn, &nf) {
					pass.Reportf(pass.Files[0].Pos(), fmt.Sprintf("%s sees %s", pass.Pkg.Path(), nf.Note))
				}
			}
			return nil, nil
		},
	}
}

func TestRunGraphFactFlow(t *testing.T) {
	findings, store, err := RunGraph(chainPkgs(t), []*Analyzer{readDepFacts()}, GraphOptions{Parallel: 4})
	if err != nil {
		t.Fatal(err)
	}
	var reads []string
	for _, f := range findings {
		if f.Analyzer == "reader" {
			reads = append(reads, f.Message)
		}
	}
	want := []string{"chain/b sees chain/a.F", "chain/c sees chain/b.F"}
	// Findings are position-sorted; extract and compare as sets via sort
	// stability of two elements.
	if len(reads) != 2 || !(contains(reads, want[0]) && contains(reads, want[1])) {
		t.Errorf("fact-flow findings = %v, want %v", reads, want)
	}
	// The returned store holds every exported fact.
	var nf noteFact
	if !store.lookup("chain/a", "F", &nf) || nf.Note != "chain/a.F" {
		t.Errorf("store missing chain/a fact: %+v", nf)
	}
}

func contains(xs []string, s string) bool {
	for _, x := range xs {
		if x == s {
			return true
		}
	}
	return false
}

func TestRunGraphFactsOnly(t *testing.T) {
	findings, store, err := RunGraph(chainPkgs(t), []*Analyzer{readDepFacts()}, GraphOptions{FactsOnly: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(findings) != 0 {
		t.Errorf("FactsOnly should report nothing, got %d findings", len(findings))
	}
	var nf noteFact
	if !store.lookup("chain/a", "F", &nf) {
		t.Error("FactsOnly should still compute producer facts")
	}
}

func TestRunGraphSuppression(t *testing.T) {
	fset := token.NewFileSet()
	pkg := checkSrc(t, fset, "sup/p", `package p

//lint:allow mark -- justified in the fixture
func F() {}

func G() {}
`, nil)

	def, _, err := RunGraph([]*Package{pkg}, []*Analyzer{markEveryFunc("mark")}, GraphOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(def) != 1 || !strings.Contains(def[0].Message, "func G") {
		t.Errorf("suppressed finding leaked: %+v", def)
	}

	all, _, err := RunGraph([]*Package{pkg}, []*Analyzer{markEveryFunc("mark")}, GraphOptions{IncludeSuppressed: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != 2 {
		t.Fatalf("IncludeSuppressed should keep both, got %d", len(all))
	}
	bySuppressed := map[bool]int{}
	for _, f := range all {
		bySuppressed[f.Suppressed]++
	}
	if bySuppressed[true] != 1 || bySuppressed[false] != 1 {
		t.Errorf("suppressed flags wrong: %+v", all)
	}
}
