package tlssim

import (
	"errors"
	"testing"
	"time"

	"repro/internal/ipaddr"
	"repro/internal/ipnet"
	"repro/internal/netsim"
	"repro/internal/simtime"
	"repro/internal/tcpsim"
)

type env struct {
	clk *simtime.Clock
	cli *Conn
	srv *Conn
}

// newEnv builds client and server TLS sessions over a simulated LAN and
// completes the handshake.
func newEnv(t *testing.T) *env {
	t.Helper()
	clk := simtime.NewClock()
	nw := netsim.NewNetwork(clk, 1)
	seg := nw.NewSegment("lan", time.Millisecond, 0)

	clientIP := ipnet.NewStack(clk, nw.NewHost("client"))
	clientIP.MustAddIface(seg, "192.168.1.10/24")
	serverIP := ipnet.NewStack(clk, nw.NewHost("server"))
	serverIP.MustAddIface(seg, "192.168.1.20/24")

	cliTCP := tcpsim.NewStack(clk, clientIP, tcpsim.Config{}, 7)
	srvTCP := tcpsim.NewStack(clk, serverIP, tcpsim.Config{}, 8)

	rng := simtime.NewRand(99)
	e := &env{clk: clk}
	if _, err := srvTCP.Listen(443, func(c *tcpsim.Conn) {
		e.srv = Server(c, rng)
	}); err != nil {
		t.Fatal(err)
	}
	tcp := cliTCP.Dial(tcpsim.Endpoint{Addr: ipaddr.MustParse("192.168.1.20"), Port: 443})
	e.cli = Client(tcp, rng)
	clk.RunFor(time.Second)
	if !e.cli.Established() || e.srv == nil || !e.srv.Established() {
		t.Fatal("handshake did not complete")
	}
	return e
}

func TestHandshakeCompletes(t *testing.T) {
	e := newEnv(t)
	if !e.cli.Established() || !e.srv.Established() {
		t.Fatal("not established")
	}
}

func TestBidirectionalMessages(t *testing.T) {
	e := newEnv(t)
	var toSrv, toCli []string
	e.srv.OnMessage = func(m []byte) { toSrv = append(toSrv, string(m)) }
	e.cli.OnMessage = func(m []byte) { toCli = append(toCli, string(m)) }
	if err := e.cli.Send([]byte("event: motion active")); err != nil {
		t.Fatal(err)
	}
	if err := e.srv.Send([]byte("command: lock door")); err != nil {
		t.Fatal(err)
	}
	e.clk.RunFor(time.Second)
	if len(toSrv) != 1 || toSrv[0] != "event: motion active" {
		t.Fatalf("server got %v", toSrv)
	}
	if len(toCli) != 1 || toCli[0] != "command: lock door" {
		t.Fatalf("client got %v", toCli)
	}
}

func TestMessageBoundariesPreserved(t *testing.T) {
	e := newEnv(t)
	var msgs []string
	e.srv.OnMessage = func(m []byte) { msgs = append(msgs, string(m)) }
	for _, m := range []string{"a", "bb", "ccc"} {
		if err := e.cli.Send([]byte(m)); err != nil {
			t.Fatal(err)
		}
	}
	e.clk.RunFor(time.Second)
	if len(msgs) != 3 || msgs[0] != "a" || msgs[1] != "bb" || msgs[2] != "ccc" {
		t.Fatalf("messages = %v", msgs)
	}
}

func TestSendBeforeEstablishedFails(t *testing.T) {
	clk := simtime.NewClock()
	nw := netsim.NewNetwork(clk, 1)
	seg := nw.NewSegment("lan", time.Millisecond, 0)
	clientIP := ipnet.NewStack(clk, nw.NewHost("client"))
	clientIP.MustAddIface(seg, "192.168.1.10/24")
	cliTCP := tcpsim.NewStack(clk, clientIP, tcpsim.Config{}, 7)
	tcp := cliTCP.Dial(tcpsim.Endpoint{Addr: ipaddr.MustParse("192.168.1.99"), Port: 443})
	c := Client(tcp, simtime.NewRand(1))
	if err := c.Send([]byte("x")); !errors.Is(err, ErrNotEstablished) {
		t.Fatalf("err = %v, want ErrNotEstablished", err)
	}
}

func TestOversizedMessageRejected(t *testing.T) {
	e := newEnv(t)
	if err := e.cli.Send(make([]byte, maxPlaintext+1)); !errors.Is(err, ErrRecordTooLarge) {
		t.Fatalf("err = %v, want ErrRecordTooLarge", err)
	}
}

func TestForgedRecordDetected(t *testing.T) {
	e := newEnv(t)
	var srvErr error
	e.srv.OnClose = func(err error) { srvErr = err }
	var cliErr error
	e.cli.OnClose = func(err error) { cliErr = err }
	// Attacker without keys injects a fake application record into the
	// client's stream.
	forged := plainRecord(RecordApplication, []byte("spoofed event payload!!!"))
	if err := e.cli.TCP().Send(forged); err != nil {
		t.Fatal(err)
	}
	e.clk.RunFor(time.Second)
	if !errors.Is(srvErr, ErrBadRecord) {
		t.Fatalf("server err = %v, want ErrBadRecord", srvErr)
	}
	if e.srv.AlertsRaised() != 1 {
		t.Fatalf("alerts = %d, want 1", e.srv.AlertsRaised())
	}
	var alert *AlertReceivedError
	if !errors.As(cliErr, &alert) {
		t.Fatalf("client err = %v, want AlertReceivedError", cliErr)
	}
}

func TestTamperedRecordDetected(t *testing.T) {
	e := newEnv(t)
	var srvErr error
	e.srv.OnClose = func(err error) { srvErr = err }
	rec := e.cli.seal(RecordApplication, []byte("legit"))
	rec[len(rec)-1] ^= 0x01 // flip one ciphertext bit
	if err := e.cli.TCP().Send(rec); err != nil {
		t.Fatal(err)
	}
	e.clk.RunFor(time.Second)
	if !errors.Is(srvErr, ErrBadRecord) {
		t.Fatalf("server err = %v, want ErrBadRecord", srvErr)
	}
}

func TestReplayDetected(t *testing.T) {
	e := newEnv(t)
	var got []string
	var srvErr error
	e.srv.OnMessage = func(m []byte) { got = append(got, string(m)) }
	e.srv.OnClose = func(err error) { srvErr = err }
	rec := e.cli.seal(RecordApplication, []byte("unlock"))
	if err := e.cli.TCP().Send(rec); err != nil {
		t.Fatal(err)
	}
	if err := e.cli.TCP().Send(rec); err != nil { // replay
		t.Fatal(err)
	}
	e.clk.RunFor(time.Second)
	if len(got) != 1 {
		t.Fatalf("delivered %d messages, want 1 (no replay)", len(got))
	}
	if !errors.Is(srvErr, ErrBadRecord) {
		t.Fatalf("server err = %v, want ErrBadRecord", srvErr)
	}
}

func TestReorderDetected(t *testing.T) {
	e := newEnv(t)
	var srvErr error
	var got []string
	e.srv.OnMessage = func(m []byte) { got = append(got, string(m)) }
	e.srv.OnClose = func(err error) { srvErr = err }
	rec1 := e.cli.seal(RecordApplication, []byte("first"))
	rec2 := e.cli.seal(RecordApplication, []byte("second"))
	if err := e.cli.TCP().Send(rec2); err != nil {
		t.Fatal(err)
	}
	if err := e.cli.TCP().Send(rec1); err != nil {
		t.Fatal(err)
	}
	e.clk.RunFor(time.Second)
	if len(got) != 0 {
		t.Fatalf("delivered %v despite reorder", got)
	}
	if !errors.Is(srvErr, ErrBadRecord) {
		t.Fatalf("server err = %v, want ErrBadRecord", srvErr)
	}
}

func TestDelayedInOrderDeliveryAccepted(t *testing.T) {
	// The attack's enabler: records held for a long time and released in
	// their original order still verify — TLS has no timeout detection.
	e := newEnv(t)
	var got []string
	var srvErr error
	e.srv.OnMessage = func(m []byte) { got = append(got, string(m)) }
	e.srv.OnClose = func(err error) { srvErr = err }
	rec1 := e.cli.seal(RecordApplication, []byte("held event 1"))
	rec2 := e.cli.seal(RecordApplication, []byte("held event 2"))
	// Hold both records for two virtual hours, then release in order.
	e.clk.Schedule(2*time.Hour, func() {
		_ = e.cli.TCP().Send(rec1)
		_ = e.cli.TCP().Send(rec2)
	})
	e.clk.RunFor(3 * time.Hour)
	if srvErr != nil {
		t.Fatalf("server err = %v, want none", srvErr)
	}
	if len(got) != 2 || got[0] != "held event 1" || got[1] != "held event 2" {
		t.Fatalf("messages = %v", got)
	}
	if e.srv.AlertsRaised() != 0 || e.cli.AlertsRaised() != 0 {
		t.Fatal("delay raised alerts; it must not")
	}
}

func TestRecordLengthObservable(t *testing.T) {
	// An observer without keys recovers the plaintext length from the
	// cleartext header — the fingerprinting primitive.
	e := newEnv(t)
	msg := make([]byte, 337)
	rec := e.cli.seal(RecordApplication, msg)
	if got := len(rec); got != 337+Overhead {
		t.Fatalf("record len = %d, want %d", got, 337+Overhead)
	}
	// Header parse.
	if RecordType(rec[0]) != RecordApplication {
		t.Fatal("record type not cleartext")
	}
	n := int(rec[3])<<8 | int(rec[4])
	if n != len(rec)-HeaderLen {
		t.Fatalf("header length field = %d, want %d", n, len(rec)-HeaderLen)
	}
}

func TestCiphertextVariesWithSequence(t *testing.T) {
	// The same plaintext sealed twice in one session differs: the sequence
	// number is bound into the nonce, which is what defeats replays.
	e := newEnv(t)
	rec1 := e.cli.seal(RecordApplication, []byte("same message"))
	rec2 := e.cli.seal(RecordApplication, []byte("same message"))
	if string(rec1[HeaderLen:]) == string(rec2[HeaderLen:]) {
		t.Fatal("two records with different sequence numbers produced identical ciphertext")
	}
}

func TestDirectionsUseDistinctKeys(t *testing.T) {
	e := newEnv(t)
	c2s := e.cli.seal(RecordApplication, []byte("same message"))
	s2c := e.srv.seal(RecordApplication, []byte("same message"))
	if string(c2s[HeaderLen:]) == string(s2c[HeaderLen:]) {
		t.Fatal("both directions produced identical ciphertext at sequence 0")
	}
}

func TestCleanClose(t *testing.T) {
	e := newEnv(t)
	var cliErr, srvErr error
	cliClosed, srvClosed := false, false
	e.cli.OnClose = func(err error) { cliClosed, cliErr = true, err }
	e.srv.OnClose = func(err error) { srvClosed, srvErr = true, err }
	e.cli.Close()
	e.clk.RunFor(time.Second)
	if !cliClosed || !srvClosed {
		t.Fatalf("closed: cli=%v srv=%v", cliClosed, srvClosed)
	}
	if cliErr != nil || srvErr != nil {
		t.Fatalf("close errors: %v / %v", cliErr, srvErr)
	}
	if err := e.cli.Send([]byte("x")); !errors.Is(err, ErrClosed) {
		t.Fatalf("send after close = %v, want ErrClosed", err)
	}
}

func TestTCPResetPropagates(t *testing.T) {
	e := newEnv(t)
	var cliErr error
	e.cli.OnClose = func(err error) { cliErr = err }
	e.srv.TCP().Abort()
	e.clk.RunFor(time.Second)
	if !errors.Is(cliErr, tcpsim.ErrReset) {
		t.Fatalf("client err = %v, want tcp reset", cliErr)
	}
}

func TestMalformedHandshakeRejected(t *testing.T) {
	e := newEnv(t)
	var srvErr error
	e.srv.OnClose = func(err error) { srvErr = err }
	// A second (unexpected) handshake record after establishment.
	if err := e.cli.TCP().Send(plainRecord(RecordHandshake, make([]byte, 48))); err != nil {
		t.Fatal(err)
	}
	e.clk.RunFor(time.Second)
	if !errors.Is(srvErr, ErrBadRecord) {
		t.Fatalf("err = %v, want ErrBadRecord", srvErr)
	}
}

func TestShortHandshakeRejected(t *testing.T) {
	// A fresh server receiving a truncated hello must fail the handshake.
	clk := simtime.NewClock()
	nw := netsim.NewNetwork(clk, 1)
	seg := nw.NewSegment("lan", time.Millisecond, 0)
	cliIP := ipnet.NewStack(clk, nw.NewHost("c"))
	cliIP.MustAddIface(seg, "192.168.1.10/24")
	srvIP := ipnet.NewStack(clk, nw.NewHost("s"))
	srvIP.MustAddIface(seg, "192.168.1.20/24")
	cliTCP := tcpsim.NewStack(clk, cliIP, tcpsim.Config{}, 7)
	srvTCP := tcpsim.NewStack(clk, srvIP, tcpsim.Config{}, 8)
	rng := simtime.NewRand(3)
	var srv *Conn
	var srvErr error
	if _, err := srvTCP.Listen(443, func(c *tcpsim.Conn) {
		srv = Server(c, rng)
		srv.OnClose = func(err error) { srvErr = err }
	}); err != nil {
		t.Fatal(err)
	}
	// Raw TCP client sends a malformed hello (30 bytes, not 48).
	tcp := cliTCP.Dial(tcpsim.Endpoint{Addr: ipaddr.MustParse("192.168.1.20"), Port: 443})
	tcp.OnEstablished = func() {
		_ = tcp.Send(plainRecord(RecordHandshake, make([]byte, 30)))
	}
	clk.RunFor(time.Second)
	if srv == nil || srv.Established() {
		t.Fatal("handshake should not complete")
	}
	if !errors.Is(srvErr, ErrBadRecord) {
		t.Fatalf("err = %v, want ErrBadRecord", srvErr)
	}
}

func TestUnknownRecordTypeRejected(t *testing.T) {
	e := newEnv(t)
	var srvErr error
	e.srv.OnClose = func(err error) { srvErr = err }
	if err := e.cli.TCP().Send(plainRecord(RecordType(99), []byte("junk"))); err != nil {
		t.Fatal(err)
	}
	e.clk.RunFor(time.Second)
	if !errors.Is(srvErr, ErrBadRecord) {
		t.Fatalf("err = %v, want ErrBadRecord", srvErr)
	}
}

func TestAlertErrorDescription(t *testing.T) {
	err := &AlertReceivedError{Description: "bad_record_mac"}
	if err.Error() != "tlssim: alert from peer: bad_record_mac" {
		t.Fatalf("Error() = %q", err.Error())
	}
}
