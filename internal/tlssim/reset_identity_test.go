package tlssim

import (
	"encoding/json"
	"fmt"
	"testing"
	"time"

	"repro/internal/ipaddr"
	"repro/internal/ipnet"
	"repro/internal/netsim"
	"repro/internal/obs"
	"repro/internal/simtime"
	"repro/internal/tcpsim"
)

// recycleLab holds the pooled pieces: clock, network, registry, stacks,
// the shared handshake RNG, and the two TLS session objects themselves —
// revived with Conn.Reset instead of reallocated on later generations.
type recycleLab struct {
	clk        *simtime.Clock
	nw         *netsim.Network
	reg        *obs.Registry
	cIP, sIP   *ipnet.Stack
	cTCP, sTCP *tcpsim.Stack
	rng        *simtime.Rand
	cli, srv   *Conn
}

func newRecycleLab() *recycleLab {
	clk := simtime.NewClock()
	l := &recycleLab{clk: clk, nw: netsim.NewNetwork(clk, 1), reg: obs.NewRegistry(), rng: simtime.NewRand(99)}
	seg := l.nw.NewSegment("lan", time.Millisecond, 0)
	l.cIP = ipnet.NewStack(clk, l.nw.NewHost("client"))
	l.sIP = ipnet.NewStack(clk, l.nw.NewHost("server"))
	l.cIP.MustAddIface(seg, "192.168.1.10/24")
	l.sIP.MustAddIface(seg, "192.168.1.20/24")
	l.cTCP = tcpsim.NewStack(clk, l.cIP, tcpsim.Config{}, 7)
	l.sTCP = tcpsim.NewStack(clk, l.sIP, tcpsim.Config{}, 8)
	clk.Instrument(l.reg)
	return l
}

func (l *recycleLab) recycle() {
	l.clk.Reset()
	l.nw.Reset(1)
	l.reg.Reset()
	seg := l.nw.NewSegment("lan", time.Millisecond, 0)
	l.cIP.Reset(l.nw.NewHost("client"))
	l.sIP.Reset(l.nw.NewHost("server"))
	l.cIP.MustAddIface(seg, "192.168.1.10/24")
	l.sIP.MustAddIface(seg, "192.168.1.20/24")
	l.cTCP.Reset(l.cIP, tcpsim.Config{}, 7)
	l.sTCP.Reset(l.sIP, tcpsim.Config{}, 8)
	l.rng.Reseed(99)
	l.clk.Instrument(l.reg)
}

// attachServer and attachClient build the sessions fresh on the first
// generation and revive the pooled Conn objects afterwards — the exact
// construction/Reset split the cloud endpoint pool uses.
func (l *recycleLab) attachServer(c *tcpsim.Conn) {
	if l.srv == nil {
		l.srv = Server(c, l.rng)
	} else {
		l.srv.Reset(c, l.rng)
	}
}

func (l *recycleLab) attachClient(c *tcpsim.Conn) {
	if l.cli == nil {
		l.cli = Client(c, l.rng)
	} else {
		l.cli.Reset(c, l.rng)
	}
}

// drive completes a handshake, exchanges records both ways, closes, and
// fingerprints the transcripts, session states, alert counts, a sentinel
// RNG draw (proving both runs consumed the generator identically) and the
// metrics snapshot.
func (l *recycleLab) drive(t *testing.T) string {
	t.Helper()
	var lines []string
	if _, err := l.sTCP.Listen(443, func(c *tcpsim.Conn) { l.attachServer(c) }); err != nil {
		t.Fatal(err)
	}
	tcp := l.cTCP.Dial(tcpsim.Endpoint{Addr: ipaddr.MustParse("192.168.1.20"), Port: 443})
	l.attachClient(tcp)
	l.cli.OnMessage = func(m []byte) { lines = append(lines, fmt.Sprintf("cli<-%q@%v", m, l.clk.Now())) }
	l.clk.RunFor(time.Second)
	if !l.cli.Established() || l.srv == nil || !l.srv.Established() {
		t.Fatal("handshake did not complete")
	}
	l.srv.OnMessage = func(m []byte) { lines = append(lines, fmt.Sprintf("srv<-%q@%v", m, l.clk.Now())) }
	for i := 0; i < 3; i++ {
		if err := l.cli.Send([]byte(fmt.Sprintf("event-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.srv.Send([]byte("command")); err != nil {
		t.Fatal(err)
	}
	l.clk.RunFor(time.Second)
	l.cli.Close()
	l.clk.RunFor(5 * time.Second)
	snap, err := json.Marshal(l.reg.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	return fmt.Sprintf("lines=%v est=%v/%v alerts=%d/%d draw=%d now=%v snap=%s",
		lines, l.cli.Established(), l.srv.Established(), l.cli.AlertsRaised(), l.srv.AlertsRaised(),
		l.rng.Intn(1<<30), l.clk.Now(), snap)
}

// TestConnResetByteIdentity recycles the sessions out of a life that ended
// mid-handshake — TCP timers pending, the RNG partially consumed — and
// requires revived Conns to replay a full exchange byte-identically to
// fresh ones, across two recycling generations.
func TestConnResetByteIdentity(t *testing.T) {
	fresh := newRecycleLab().drive(t)

	l := newRecycleLab()
	if _, err := l.sTCP.Listen(443, func(c *tcpsim.Conn) { l.attachServer(c) }); err != nil {
		t.Fatal(err)
	}
	l.attachClient(l.cTCP.Dial(tcpsim.Endpoint{Addr: ipaddr.MustParse("192.168.1.20"), Port: 443}))
	l.clk.RunFor(2 * time.Millisecond) // handshake mid-flight at recycle time

	l.recycle()
	for _, g := range l.reg.Snapshot().Gauges {
		if g.Name == "simtime_queue_depth" && (g.Value != 0 || g.Max != 0) {
			t.Fatalf("simtime_queue_depth after recycle = %d (max %d), want 0", g.Value, g.Max)
		}
	}
	if got := l.drive(t); got != fresh {
		t.Errorf("recycled sessions diverged from fresh\n fresh: %s\n reuse: %s", fresh, got)
	}

	l.recycle()
	if got := l.drive(t); got != fresh {
		t.Errorf("second recycling generation diverged from fresh\n fresh: %s\n reuse: %s", fresh, got)
	}
}
