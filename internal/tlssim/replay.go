package tlssim

import (
	"encoding/binary"

	"repro/internal/simtime"
	"repro/internal/tcpsim"
)

// ReplayMode selects how application records bind to the session's record
// sequence — the axis real IoT TLS stacks differ on and record-and-replay
// attacks exploit. The mode is the client's to pick (it models the device
// firmware's cipher-suite offer) and is carried in the client hello; the
// server adopts it for both directions of the session.
type ReplayMode byte

const (
	// ModeSeqBound is modern TLS 1.3-style protection: the implicit
	// per-direction counter is bound into nonce and additional data, so a
	// replayed record fails authentication and tears the session down with
	// an alert. The default; wire-identical to sessions that predate
	// replay-mode negotiation.
	ModeSeqBound ReplayMode = iota
	// ModeLegacyNonce models TLS 1.2 explicit-nonce stacks: each record
	// carries its sequence number on the wire and the receiver verifies the
	// record against the carried value, not its own counter. Ciphertext
	// stays confidential, but a verbatim replay decrypts cleanly and is
	// accepted unless a replay window drops it.
	ModeLegacyNonce
	// ModeNullCipher models plaintext/null-cipher firmware: records carry
	// an explicit sequence and the payload in the clear. Captured traffic
	// is both replayable and readable at the application layer.
	ModeNullCipher
)

// Valid reports whether m is a defined replay mode.
func (m ReplayMode) Valid() bool { return m <= ModeNullCipher }

func (m ReplayMode) String() string {
	switch m {
	case ModeSeqBound:
		return "seq-bound"
	case ModeLegacyNonce:
		return "legacy-nonce"
	case ModeNullCipher:
		return "null-cipher"
	default:
		return "invalid"
	}
}

// explicitSeqLen is the wire size of the explicit record sequence that
// legacy-nonce and null-cipher application records carry.
const explicitSeqLen = 8

// MaxReplayWindow bounds the negotiable anti-replay window: one uint64
// bitmask, as in DTLS's reference implementation.
const MaxReplayWindow = 64

// ModeOverhead returns the per-record bytes added to an application
// message under the given replay mode. ModeSeqBound matches Overhead;
// sniffers must pick the session owner's mode to recover plaintext lengths
// from wire observations.
func ModeOverhead(m ReplayMode) int {
	switch m {
	case ModeLegacyNonce:
		return HeaderLen + explicitSeqLen + 16
	case ModeNullCipher:
		return HeaderLen + explicitSeqLen
	default:
		return Overhead
	}
}

// ClientWithMode starts a client session that negotiates the given replay
// mode and anti-replay window in its hello. The window (clamped to
// [0, MaxReplayWindow]) only matters for the explicit-sequence modes:
// seq-bound sessions reject replays unconditionally, while legacy-nonce and
// null-cipher sessions accept them unless a nonzero window drops
// duplicates. ClientWithMode(tcp, rng, ModeSeqBound, 0) is exactly
// Client(tcp, rng).
func ClientWithMode(tcp *tcpsim.Conn, rng *simtime.Rand, mode ReplayMode, window int) *Conn {
	c := newConn(tcp, rng, true)
	c.mode = mode
	c.window = clampWindow(window)
	if tcp.State() == tcpsim.StateEstablished {
		c.sendHello()
	} else {
		tcp.OnEstablished = c.sendHello
	}
	return c
}

func clampWindow(w int) int {
	if w < 0 {
		return 0
	}
	if w > MaxReplayWindow {
		return MaxReplayWindow
	}
	return w
}

// Mode returns the session's replay mode (for servers, the mode adopted
// from the client hello once the handshake completes).
func (c *Conn) Mode() ReplayMode { return c.mode }

// ReplayWindowSize returns the negotiated anti-replay window size.
func (c *Conn) ReplayWindowSize() int { return c.window }

// replayWindow is a DTLS-style sliding anti-replay window over explicit
// record sequences: the highest sequence seen plus a bitmask of the window
// below it.
type replayWindow struct {
	highest uint64
	mask    uint64
	started bool
}

// observe records seq and reports whether it is fresh. A sequence at or
// below highest-size is too old to judge and counts as replayed, matching
// DTLS's conservative treatment.
func (w *replayWindow) observe(seq uint64, size int) bool {
	if !w.started {
		w.started = true
		w.highest = seq
		w.mask = 1
		return true
	}
	if seq > w.highest {
		shift := seq - w.highest
		if shift >= 64 {
			w.mask = 1
		} else {
			w.mask = w.mask<<shift | 1
		}
		w.highest = seq
		return true
	}
	back := w.highest - seq
	if back >= uint64(size) {
		return false
	}
	bit := uint64(1) << back
	if w.mask&bit != 0 {
		return false
	}
	w.mask |= bit
	return true
}

func (w *replayWindow) reset() {
	w.highest, w.mask, w.started = 0, 0, false
}

// sealExplicit encodes an application record for the explicit-sequence
// modes: an 8-byte record sequence on the wire, followed by the AES-GCM
// ciphertext (legacy nonce) or the raw plaintext (null cipher). The sender
// still advances its own counter — the weakness is on the receive path,
// which trusts the carried sequence.
func (c *Conn) sealExplicit(typ RecordType, plain []byte) []byte {
	seq := c.sendSeq
	c.sendSeq++
	var body []byte
	if c.mode == ModeNullCipher {
		body = make([]byte, explicitSeqLen+len(plain))
		binary.BigEndian.PutUint64(body[:explicitSeqLen], seq)
		copy(body[explicitSeqLen:], plain)
	} else {
		nonce := c.seqNonce(seq)
		aad := c.additionalData(typ, seq, len(plain)+16)
		ct := c.sendAEAD.Seal(nil, nonce, plain, aad)
		body = make([]byte, explicitSeqLen, explicitSeqLen+len(ct))
		binary.BigEndian.PutUint64(body[:explicitSeqLen], seq)
		body = append(body, ct...)
	}
	rec := make([]byte, HeaderLen+len(body))
	fillHeader(rec, typ, len(body))
	copy(rec[HeaderLen:], body)
	return rec
}

// processExplicitSeq handles legacy-nonce and null-cipher application
// records. Verification (when there is any) runs against the sequence the
// record carries, so a verbatim replay passes it; the negotiated
// anti-replay window, when nonzero, silently drops duplicates the way DTLS
// does — no alert, no teardown, nothing for the application to see.
func (c *Conn) processExplicitSeq(body []byte) {
	minLen := explicitSeqLen
	if c.mode == ModeLegacyNonce {
		minLen += 16
	}
	if len(body) < minLen {
		c.emit("record_bad", c.label, int64(len(body)))
		c.fail("bad_record_mac")
		return
	}
	seq := binary.BigEndian.Uint64(body[:explicitSeqLen])
	var plain []byte
	if c.mode == ModeNullCipher {
		plain = body[explicitSeqLen:]
	} else {
		nonce := c.seqNonce(seq)
		ct := body[explicitSeqLen:]
		aad := c.additionalData(RecordApplication, seq, len(ct))
		var err error
		plain, err = c.recvAEAD.Open(nil, nonce, ct, aad)
		if err != nil {
			c.emit("record_bad", c.label, int64(seq))
			c.fail("bad_record_mac")
			return
		}
	}
	if c.window > 0 && !c.recvWindow.observe(seq, c.window) {
		c.emit("replay_dropped", c.label, int64(seq))
		return
	}
	c.emit("record_ok", c.label, int64(seq))
	if c.OnMessage != nil {
		c.OnMessage(plain)
	}
}

// ReadPlaintext extracts the application plaintext from a captured
// null-cipher application record (header + explicit sequence + clear
// payload). It returns nil for records of any other shape — callers use it
// to test whether a capture is readable at all.
func ReadPlaintext(rec []byte) []byte {
	if len(rec) < HeaderLen+explicitSeqLen {
		return nil
	}
	if RecordType(rec[0]) != RecordApplication {
		return nil
	}
	n := int(binary.BigEndian.Uint16(rec[3:5]))
	if len(rec) != HeaderLen+n || n < explicitSeqLen {
		return nil
	}
	return rec[HeaderLen+explicitSeqLen:]
}
