package tlssim

import (
	"errors"
	"testing"
	"time"

	"repro/internal/ipaddr"
	"repro/internal/ipnet"
	"repro/internal/netsim"
	"repro/internal/simtime"
	"repro/internal/tcpsim"
)

// newModeEnv is newEnv with an explicit replay-mode offer from the client.
func newModeEnv(t *testing.T, mode ReplayMode, window int) *env {
	t.Helper()
	clk := simtime.NewClock()
	nw := netsim.NewNetwork(clk, 1)
	seg := nw.NewSegment("lan", time.Millisecond, 0)

	clientIP := ipnet.NewStack(clk, nw.NewHost("client"))
	clientIP.MustAddIface(seg, "192.168.1.10/24")
	serverIP := ipnet.NewStack(clk, nw.NewHost("server"))
	serverIP.MustAddIface(seg, "192.168.1.20/24")

	cliTCP := tcpsim.NewStack(clk, clientIP, tcpsim.Config{}, 7)
	srvTCP := tcpsim.NewStack(clk, serverIP, tcpsim.Config{}, 8)

	rng := simtime.NewRand(99)
	e := &env{clk: clk}
	if _, err := srvTCP.Listen(443, func(c *tcpsim.Conn) {
		e.srv = Server(c, rng)
	}); err != nil {
		t.Fatal(err)
	}
	tcp := cliTCP.Dial(tcpsim.Endpoint{Addr: ipaddr.MustParse("192.168.1.20"), Port: 443})
	e.cli = ClientWithMode(tcp, rng, mode, window)
	clk.RunFor(time.Second)
	if !e.cli.Established() || e.srv == nil || !e.srv.Established() {
		t.Fatal("handshake did not complete")
	}
	return e
}

// TestModeNegotiation pins the hello wire format: the default offer stays
// the 48-byte pre-negotiation hello, explicit offers ride two extra bytes,
// and the server adopts the client's mode and window for the session.
func TestModeNegotiation(t *testing.T) {
	for _, tc := range []struct {
		mode   ReplayMode
		window int
		want   int // expected adopted window
	}{
		{ModeSeqBound, 0, 0},
		{ModeLegacyNonce, 0, 0},
		{ModeLegacyNonce, 64, 64},
		{ModeNullCipher, 8, 8},
		{ModeNullCipher, 1 << 20, MaxReplayWindow}, // clamped
		{ModeLegacyNonce, -3, 0},                   // clamped
	} {
		e := newModeEnv(t, tc.mode, tc.window)
		if e.srv.Mode() != tc.mode {
			t.Errorf("mode %v window %d: server adopted %v", tc.mode, tc.window, e.srv.Mode())
		}
		if e.srv.ReplayWindowSize() != tc.want {
			t.Errorf("mode %v window %d: server window %d, want %d",
				tc.mode, tc.window, e.srv.ReplayWindowSize(), tc.want)
		}
	}
}

// TestDefaultHelloIsLegacyCompatible checks that Client's hello is the
// 48-byte form — replay-mode negotiation must not change the wire bytes of
// sessions that never offer it.
func TestDefaultHelloIsLegacyCompatible(t *testing.T) {
	c := &Conn{priv: newX25519Key(simtime.NewRand(1))}
	simtime.NewRand(2).Bytes(c.random[:])
	body := make([]byte, 0, 50)
	body = append(body, c.priv.PublicKey().Bytes()...)
	body = append(body, c.random[:]...)
	if len(body) != 48 {
		t.Fatalf("default hello body is %d bytes, want 48", len(body))
	}
}

// TestBadModeRejected: a hello carrying an undefined mode byte must fail
// the handshake, and a server hello must never carry the negotiation bytes.
func TestBadModeRejected(t *testing.T) {
	clk := simtime.NewClock()
	nw := netsim.NewNetwork(clk, 1)
	seg := nw.NewSegment("lan", time.Millisecond, 0)
	clientIP := ipnet.NewStack(clk, nw.NewHost("client"))
	clientIP.MustAddIface(seg, "192.168.1.10/24")
	serverIP := ipnet.NewStack(clk, nw.NewHost("server"))
	serverIP.MustAddIface(seg, "192.168.1.20/24")
	cliTCP := tcpsim.NewStack(clk, clientIP, tcpsim.Config{}, 7)
	srvTCP := tcpsim.NewStack(clk, serverIP, tcpsim.Config{}, 8)

	rng := simtime.NewRand(99)
	var srv *Conn
	if _, err := srvTCP.Listen(443, func(c *tcpsim.Conn) { srv = Server(c, rng) }); err != nil {
		t.Fatal(err)
	}
	tcp := cliTCP.Dial(tcpsim.Endpoint{Addr: ipaddr.MustParse("192.168.1.20"), Port: 443})
	tcp.OnEstablished = func() {
		// A raw 50-byte hello with an out-of-range mode byte.
		priv := newX25519Key(rng)
		body := make([]byte, 0, 50)
		body = append(body, priv.PublicKey().Bytes()...)
		body = append(body, make([]byte, 16)...)
		body = append(body, 0xEE, 0x00)
		_ = tcp.Send(plainRecord(RecordHandshake, body))
	}
	clk.RunFor(time.Second)
	if srv == nil {
		t.Fatal("no server connection")
	}
	if srv.Established() {
		t.Fatal("server established a session from an invalid mode offer")
	}
}

// TestLegacyNonceVerbatimReplayAccepted: under ModeLegacyNonce with no
// window, a verbatim captured record decrypts against its carried sequence
// and is delivered twice — the raw-replay vulnerability.
func TestLegacyNonceVerbatimReplayAccepted(t *testing.T) {
	e := newModeEnv(t, ModeLegacyNonce, 0)
	var got []string
	e.srv.OnMessage = func(m []byte) { got = append(got, string(m)) }
	rec := e.cli.seal(RecordApplication, []byte("event: leak detected"))
	for i := 0; i < 2; i++ {
		if err := e.cli.TCP().Send(rec); err != nil {
			t.Fatal(err)
		}
		e.clk.RunFor(time.Second)
	}
	if len(got) != 2 || got[0] != got[1] {
		t.Fatalf("server delivered %v, want the duplicate accepted", got)
	}
	if err := e.cli.Send([]byte("still alive")); err != nil {
		t.Fatalf("session should survive a legacy replay: %v", err)
	}
}

// TestReplayWindowDropsDuplicateSilently: with a negotiated window the
// duplicate is discarded without an alert or teardown, DTLS-style.
func TestReplayWindowDropsDuplicateSilently(t *testing.T) {
	e := newModeEnv(t, ModeLegacyNonce, 64)
	var got []string
	var closed error
	gotClose := false
	e.srv.OnMessage = func(m []byte) { got = append(got, string(m)) }
	e.srv.OnClose = func(err error) { closed, gotClose = err, true }
	rec := e.cli.seal(RecordApplication, []byte("event: leak detected"))
	for i := 0; i < 3; i++ {
		if err := e.cli.TCP().Send(rec); err != nil {
			t.Fatal(err)
		}
		e.clk.RunFor(time.Second)
	}
	if len(got) != 1 {
		t.Fatalf("server delivered %v, want exactly one", got)
	}
	if gotClose {
		t.Fatalf("window drop tore the session down: %v", closed)
	}
	if e.srv.AlertsRaised() != 0 {
		t.Fatalf("window drop raised %d alerts, want none", e.srv.AlertsRaised())
	}
}

// TestSeqBoundReplayTearsDown: the default mode treats a replayed record as
// an authentication failure — alert and teardown, nothing delivered twice.
func TestSeqBoundReplayTearsDown(t *testing.T) {
	e := newEnv(t)
	var got []string
	var srvErr error
	e.srv.OnMessage = func(m []byte) { got = append(got, string(m)) }
	e.srv.OnClose = func(err error) { srvErr = err }
	rec := e.cli.seal(RecordApplication, []byte("event: door open"))
	for i := 0; i < 2; i++ {
		if err := e.cli.TCP().Send(rec); err != nil {
			t.Fatal(err)
		}
		e.clk.RunFor(time.Second)
	}
	if len(got) != 1 {
		t.Fatalf("server delivered %v, want one", got)
	}
	if !errors.Is(srvErr, ErrBadRecord) {
		t.Fatalf("server err = %v, want ErrBadRecord", srvErr)
	}
}

// TestNullCipherReadableOnTheWire: null-cipher application records expose
// the plaintext to ReadPlaintext; every other shape reads as nil.
func TestNullCipherReadableOnTheWire(t *testing.T) {
	e := newModeEnv(t, ModeNullCipher, 0)
	msg := []byte("event: motion active")
	rec := e.cli.seal(RecordApplication, msg)
	if got := string(ReadPlaintext(rec)); got != string(msg) {
		t.Fatalf("ReadPlaintext = %q, want %q", got, msg)
	}

	// Not readable: seq-bound ciphertext of the right type but the payload
	// must not leak, handshake records, truncated and length-lying records.
	seqEnv := newEnv(t)
	ct := seqEnv.cli.seal(RecordApplication, msg)
	if p := ReadPlaintext(ct); string(p) == string(msg) {
		t.Fatal("ReadPlaintext recovered plaintext from a seq-bound record")
	}
	if p := ReadPlaintext(plainRecord(RecordHandshake, make([]byte, 48))); p != nil {
		t.Fatal("ReadPlaintext accepted a handshake record")
	}
	if p := ReadPlaintext(rec[:HeaderLen+4]); p != nil {
		t.Fatal("ReadPlaintext accepted a truncated record")
	}
	lying := append([]byte(nil), rec...)
	lying[4]++ // header length no longer matches the body
	if p := ReadPlaintext(lying); p != nil {
		t.Fatal("ReadPlaintext accepted a length-lying record")
	}
}

// TestModeOverheadMatchesWire pins ModeOverhead against actual sealed
// records — the sniffing fingerprints depend on these constants.
func TestModeOverheadMatchesWire(t *testing.T) {
	msg := []byte("0123456789")
	for _, mode := range []ReplayMode{ModeSeqBound, ModeLegacyNonce, ModeNullCipher} {
		var e *env
		if mode == ModeSeqBound {
			e = newEnv(t)
		} else {
			e = newModeEnv(t, mode, 0)
		}
		rec := e.cli.seal(RecordApplication, msg)
		if len(rec) != len(msg)+ModeOverhead(mode) {
			t.Errorf("%v: wire %d bytes, want %d + %d", mode, len(rec), len(msg), ModeOverhead(mode))
		}
	}
}

// TestReplayWindowObserve covers the sliding-window edge cases directly.
func TestReplayWindowObserve(t *testing.T) {
	var w replayWindow
	if !w.observe(5, 64) {
		t.Fatal("first sequence rejected")
	}
	if w.observe(5, 64) {
		t.Fatal("duplicate accepted")
	}
	if !w.observe(7, 64) || !w.observe(6, 64) {
		t.Fatal("fresh in-window sequences rejected")
	}
	if w.observe(6, 64) {
		t.Fatal("back-filled duplicate accepted")
	}
	// Too old to judge: at or below highest-size counts as replayed.
	if !w.observe(200, 64) {
		t.Fatal("large jump rejected")
	}
	if w.observe(100, 64) {
		t.Fatal("sequence below the window accepted")
	}
	// A jump of >= 64 resets the mask entirely.
	if !w.observe(500, 64) || !w.observe(499, 64) {
		t.Fatal("post-jump sequences rejected")
	}
	w.reset()
	if !w.observe(5, 64) {
		t.Fatal("reset window rejected its first sequence")
	}
}

// TestClampWindow pins the negotiation bounds.
func TestClampWindow(t *testing.T) {
	for _, tc := range []struct{ in, want int }{
		{-1, 0}, {0, 0}, {1, 1}, {64, 64}, {65, 64}, {1 << 30, 64},
	} {
		if got := clampWindow(tc.in); got != tc.want {
			t.Errorf("clampWindow(%d) = %d, want %d", tc.in, got, tc.want)
		}
	}
}

// TestKeygenDeterministic guards the MaybeReadByte regression: two
// connections built from equal seeds must produce byte-identical ciphertext
// for the same conversation. ecdh.Curve.GenerateKey consumes a
// scheduler-dependent number of reader bytes, which this construction must
// never do — replayed ciphertext content is a simulation observable.
func TestKeygenDeterministic(t *testing.T) {
	sealOnce := func() []byte {
		e := &env{}
		clk := simtime.NewClock()
		nw := netsim.NewNetwork(clk, 1)
		seg := nw.NewSegment("lan", time.Millisecond, 0)
		clientIP := ipnet.NewStack(clk, nw.NewHost("client"))
		clientIP.MustAddIface(seg, "192.168.1.10/24")
		serverIP := ipnet.NewStack(clk, nw.NewHost("server"))
		serverIP.MustAddIface(seg, "192.168.1.20/24")
		cliTCP := tcpsim.NewStack(clk, clientIP, tcpsim.Config{}, 7)
		srvTCP := tcpsim.NewStack(clk, serverIP, tcpsim.Config{}, 8)
		rng := simtime.NewRand(1234)
		if _, err := srvTCP.Listen(443, func(c *tcpsim.Conn) { e.srv = Server(c, rng) }); err != nil {
			t.Fatal(err)
		}
		tcp := cliTCP.Dial(tcpsim.Endpoint{Addr: ipaddr.MustParse("192.168.1.20"), Port: 443})
		e.cli = Client(tcp, rng)
		clk.RunFor(time.Second)
		if !e.cli.Established() {
			t.Fatal("handshake did not complete")
		}
		return e.cli.seal(RecordApplication, []byte("event: door open"))
	}
	a, b := sealOnce(), sealOnce()
	if string(a) != string(b) {
		t.Fatalf("same-seed ciphertext differs:\n%x\n%x", a, b)
	}
}
