// Package tlssim implements a TLS-like secure channel over a tcpsim
// connection: an X25519 key agreement followed by AES-GCM records bound to
// implicit per-direction sequence numbers.
//
// The three properties the paper's analysis rests on all hold here:
//
//  1. Record headers (type and length) are cleartext, so an on-path
//     attacker can delimit and fingerprint messages without keys.
//  2. Any forgery, modification, replay or reordering fails authentication
//     (the sequence number is bound into the nonce and additional data) and
//     tears the session down with an alert — the attacker cannot spoof
//     application messages.
//  3. The layer has no timeout detection of its own: records delayed by an
//     attacker and later delivered in their original order verify cleanly.
package tlssim

import (
	"crypto/aes"
	"crypto/cipher"
	"crypto/ecdh"
	"crypto/hmac"
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"

	"repro/internal/obs"
	"repro/internal/simtime"
	"repro/internal/tcpsim"
)

// RecordType identifies a record's purpose, mirroring TLS content types.
type RecordType byte

// Record content types (values match TLS for familiarity in traces).
const (
	RecordAlert       RecordType = 21
	RecordHandshake   RecordType = 22
	RecordApplication RecordType = 23
)

// HeaderLen is the cleartext record header size: type(1) version(2) len(2).
const HeaderLen = 5

// Overhead is the per-record size added to an application message: the
// cleartext header plus the 16-byte AEAD tag. Sniffers subtract it to
// recover plaintext message lengths from wire observations.
const Overhead = HeaderLen + 16

// maxPlaintext bounds one record's payload, as in TLS.
const maxPlaintext = 16384

// Errors surfaced through OnClose or Send.
var (
	// ErrBadRecord reports an authentication or sequencing violation.
	ErrBadRecord = errors.New("tlssim: record authentication failed")
	// ErrHandshake reports a malformed handshake exchange.
	ErrHandshake = errors.New("tlssim: handshake failed")
	// ErrNotEstablished reports Send before the handshake completed.
	ErrNotEstablished = errors.New("tlssim: session not established")
	// ErrClosed reports use after close.
	ErrClosed = errors.New("tlssim: session closed")
	// ErrRecordTooLarge reports a Send exceeding the record size limit.
	ErrRecordTooLarge = errors.New("tlssim: message exceeds record limit")
)

// AlertReceivedError reports the session was ended by a peer alert,
// carrying its description. It indicates to experiments that tampering was
// *detected* — the outcome phantom delays never produce.
type AlertReceivedError struct {
	Description string
}

func (e *AlertReceivedError) Error() string {
	return fmt.Sprintf("tlssim: alert from peer: %s", e.Description)
}

// Conn is one endpoint of a secure session layered on a TCP connection.
// All callbacks run on the simulation event loop.
type Conn struct {
	tcp      *tcpsim.Conn
	isClient bool

	priv         *ecdh.PrivateKey
	random       [16]byte
	peerRandom   [16]byte
	established  bool
	closed       bool
	closeErr     error
	sendSeq      uint64
	recvSeq      uint64
	sendAEAD     cipher.AEAD
	recvAEAD     cipher.AEAD
	rbuf         []byte
	alertsRaised int
	// nonceBuf/aadBuf are the per-record crypto scratch: the AEAD consumes
	// both before Seal/Open returns, so one pair serves every record.
	nonceBuf [12]byte
	aadBuf   [13]byte

	// mode/window are the negotiated replay protections (see replay.go):
	// clients pick them at construction, servers adopt them from the hello.
	mode       ReplayMode
	window     int
	recvWindow replayWindow

	trace *obs.Trace
	label string

	// OnEstablished fires when the handshake completes.
	OnEstablished func()
	// OnMessage delivers one decrypted application message per record.
	OnMessage func([]byte)
	// OnClose fires exactly once when the session ends; nil means a clean
	// close, ErrBadRecord or AlertReceivedError mean detected tampering.
	OnClose func(error)
}

// Client starts a session as the initiator. The ClientHello goes out when
// the underlying TCP connection establishes (immediately if it already is).
func Client(tcp *tcpsim.Conn, rng *simtime.Rand) *Conn {
	return ClientWithMode(tcp, rng, ModeSeqBound, 0)
}

// Server starts a session as the responder on an accepted TCP connection.
func Server(tcp *tcpsim.Conn, rng *simtime.Rand) *Conn {
	return newConn(tcp, rng, false)
}

func newConn(tcp *tcpsim.Conn, rng *simtime.Rand, isClient bool) *Conn {
	c := &Conn{tcp: tcp, isClient: isClient, priv: newX25519Key(rng)}
	rng.Bytes(c.random[:])
	tcp.OnData = c.onData
	tcp.OnClose = func(err error) { c.teardown(err) }
	return c
}

// Reset reinitialises the connection in place against a new transport and
// randomness source, keeping its role (client or server) and its buffer
// allocations. The handshake restarts from scratch: a fresh key pair and
// random are drawn from rng in the same order construction draws them, so a
// reset connection behaves byte-identically to Client(tcp, rng) or
// Server(tcp, rng) on the same inputs. Observer hooks and tracing are
// cleared for the owner to rewire.
func (c *Conn) Reset(tcp *tcpsim.Conn, rng *simtime.Rand) {
	c.tcp = tcp
	c.priv = newX25519Key(rng)
	rng.Bytes(c.random[:])
	c.peerRandom = [16]byte{}
	c.established = false
	c.closed = false
	c.closeErr = nil
	c.sendSeq, c.recvSeq = 0, 0
	c.sendAEAD, c.recvAEAD = nil, nil
	c.rbuf = c.rbuf[:0]
	c.alertsRaised = 0
	c.mode, c.window = ModeSeqBound, 0
	c.recvWindow.reset()
	c.trace, c.label = nil, ""
	c.OnEstablished, c.OnMessage, c.OnClose = nil, nil, nil
	tcp.OnData = c.onData
	tcp.OnClose = func(err error) { c.teardown(err) }
	if c.isClient {
		if tcp.State() == tcpsim.StateEstablished {
			c.sendHello()
		} else {
			tcp.OnEstablished = c.sendHello
		}
	}
}

// TCP returns the underlying transport connection.
func (c *Conn) TCP() *tcpsim.Conn { return c.tcp }

// Instrument attaches a trace ring so the connection emits "tlssim" events
// (handshake, per-record seq-check pass/fail, alerts), labeled by the
// endpoint's name. A nil or disabled trace keeps the connection silent.
func (c *Conn) Instrument(tr *obs.Trace, label string) {
	if !tr.Enabled() {
		return
	}
	c.trace = tr
	c.label = label
}

func (c *Conn) emit(event, detail string, value int64) {
	if c.trace == nil {
		return
	}
	c.trace.Emit(c.tcp.Clock().Now(), "tlssim", event, detail, value)
}

// Established reports whether the handshake has completed.
func (c *Conn) Established() bool { return c.established }

// AlertsRaised counts integrity alerts this endpoint has sent — the
// "detection" signal the experiments assert stays at zero under the attack.
func (c *Conn) AlertsRaised() int { return c.alertsRaised }

// Send encrypts msg as a single application record.
func (c *Conn) Send(msg []byte) error {
	if c.closed {
		return ErrClosed
	}
	if !c.established {
		return ErrNotEstablished
	}
	if len(msg) > maxPlaintext {
		return ErrRecordTooLarge
	}
	rec := c.seal(RecordApplication, msg)
	return c.tcp.Send(rec)
}

// Close closes the session and its transport gracefully.
func (c *Conn) Close() {
	if c.closed {
		return
	}
	c.tcp.Close()
}

func (c *Conn) sendHello() {
	body := make([]byte, 0, 50)
	body = append(body, c.priv.PublicKey().Bytes()...)
	body = append(body, c.random[:]...)
	// Replay-mode negotiation rides two extra hello bytes; the default
	// seq-bound/no-window offer stays byte-identical to the 48-byte hello
	// that predates it.
	if c.mode != ModeSeqBound || c.window > 0 {
		body = append(body, byte(c.mode), byte(c.window))
	}
	rec := plainRecord(RecordHandshake, body)
	// Transport errors surface later through OnClose; a failed hello simply
	// never completes the handshake.
	_ = c.tcp.Send(rec)
}

func (c *Conn) onData(b []byte) {
	c.rbuf = append(c.rbuf, b...)
	for !c.closed {
		if len(c.rbuf) < HeaderLen {
			return
		}
		n := int(binary.BigEndian.Uint16(c.rbuf[3:5]))
		if len(c.rbuf) < HeaderLen+n {
			return
		}
		typ := RecordType(c.rbuf[0])
		body := c.rbuf[HeaderLen : HeaderLen+n]
		c.rbuf = c.rbuf[HeaderLen+n:]
		c.processRecord(typ, body)
	}
}

func (c *Conn) processRecord(typ RecordType, body []byte) {
	switch typ {
	case RecordHandshake:
		c.processHandshake(body)
	case RecordApplication:
		c.processApplication(body)
	case RecordAlert:
		if c.trace != nil {
			c.emit("alert_received", c.label+":"+string(body), 0)
		}
		c.tcp.Close()
		c.teardown(&AlertReceivedError{Description: string(body)})
	default:
		c.fail("unexpected_record_type")
	}
}

func (c *Conn) processHandshake(body []byte) {
	if c.established || (len(body) != 48 && len(body) != 50) {
		c.fail("unexpected_handshake")
		return
	}
	peerPub, err := ecdh.X25519().NewPublicKey(body[:32])
	if err != nil {
		c.fail("bad_public_key")
		return
	}
	copy(c.peerRandom[:], body[32:48])
	if len(body) == 50 {
		// Replay-mode negotiation: only a client hello may carry it, and the
		// server adopts the client's offer for both directions.
		mode := ReplayMode(body[48])
		if c.isClient || !mode.Valid() {
			c.fail("bad_replay_mode")
			return
		}
		c.mode = mode
		c.window = clampWindow(int(body[49]))
	}
	shared, err := c.priv.ECDH(peerPub)
	if err != nil {
		c.fail("key_agreement_failed")
		return
	}
	if !c.isClient {
		// Respond before deriving so the client can complete too.
		c.sendHelloAsServer()
	}
	if err := c.deriveKeys(shared); err != nil {
		c.fail("key_derivation_failed")
		return
	}
	c.established = true
	c.emit("handshake", c.label, 0)
	if c.OnEstablished != nil {
		c.OnEstablished()
	}
}

func (c *Conn) sendHelloAsServer() {
	body := make([]byte, 0, 48)
	body = append(body, c.priv.PublicKey().Bytes()...)
	body = append(body, c.random[:]...)
	_ = c.tcp.Send(plainRecord(RecordHandshake, body))
}

func (c *Conn) deriveKeys(shared []byte) error {
	var clientRandom, serverRandom [16]byte
	if c.isClient {
		clientRandom, serverRandom = c.random, c.peerRandom
	} else {
		clientRandom, serverRandom = c.peerRandom, c.random
	}
	clientKey := deriveKey(shared, "client write", clientRandom, serverRandom)
	serverKey := deriveKey(shared, "server write", clientRandom, serverRandom)
	mk := func(key []byte) (cipher.AEAD, error) {
		block, err := aes.NewCipher(key)
		if err != nil {
			return nil, err
		}
		return cipher.NewGCM(block)
	}
	var sendKey, recvKey []byte
	if c.isClient {
		sendKey, recvKey = clientKey, serverKey
	} else {
		sendKey, recvKey = serverKey, clientKey
	}
	var err error
	if c.sendAEAD, err = mk(sendKey); err != nil {
		return err
	}
	c.recvAEAD, err = mk(recvKey)
	return err
}

func deriveKey(shared []byte, label string, cr, sr [16]byte) []byte {
	h := hmac.New(sha256.New, shared)
	h.Write([]byte(label))
	h.Write(cr[:])
	h.Write(sr[:])
	return h.Sum(nil)[:16]
}

func (c *Conn) processApplication(body []byte) {
	if !c.established {
		c.fail("record_before_handshake")
		return
	}
	if c.mode != ModeSeqBound {
		c.processExplicitSeq(body)
		return
	}
	nonce := c.seqNonce(c.recvSeq)
	aad := c.additionalData(RecordApplication, c.recvSeq, len(body))
	plain, err := c.recvAEAD.Open(nil, nonce, body, aad)
	if err != nil {
		// Seq-check / authentication failure: a delayed record delivered
		// out of its original order lands here and raises an alert.
		c.emit("record_bad", c.label, int64(c.recvSeq))
		c.fail("bad_record_mac")
		return
	}
	// Seq-check pass: the record arrived in its original order, so a
	// phantom-delayed release verifies cleanly.
	c.emit("record_ok", c.label, int64(c.recvSeq))
	c.recvSeq++
	if c.OnMessage != nil {
		c.OnMessage(plain)
	}
}

// fail raises an alert, aborts the transport and reports ErrBadRecord —
// the loud, detectable outcome the paper's attack never produces.
func (c *Conn) fail(desc string) {
	c.alertsRaised++
	if c.trace != nil {
		c.emit("alert_raised", c.label+":"+desc, 0)
	}
	_ = c.tcp.Send(plainRecord(RecordAlert, []byte(desc)))
	c.tcp.Close()
	c.teardown(fmt.Errorf("%w (%s)", ErrBadRecord, desc))
}

func (c *Conn) teardown(err error) {
	if c.closed {
		return
	}
	c.closed = true
	c.closeErr = err
	if c.OnClose != nil {
		c.OnClose(err)
	}
}

func (c *Conn) seal(typ RecordType, plain []byte) []byte {
	if c.mode != ModeSeqBound {
		return c.sealExplicit(typ, plain)
	}
	nonce := c.seqNonce(c.sendSeq)
	aad := c.additionalData(typ, c.sendSeq, len(plain)+16)
	body := c.sendAEAD.Seal(nil, nonce, plain, aad)
	c.sendSeq++
	rec := make([]byte, HeaderLen+len(body))
	fillHeader(rec, typ, len(body))
	copy(rec[HeaderLen:], body)
	return rec
}

func plainRecord(typ RecordType, body []byte) []byte {
	rec := make([]byte, HeaderLen+len(body))
	fillHeader(rec, typ, len(body))
	copy(rec[HeaderLen:], body)
	return rec
}

func fillHeader(rec []byte, typ RecordType, n int) {
	rec[0] = byte(typ)
	rec[1] = 0x03
	rec[2] = 0x03
	binary.BigEndian.PutUint16(rec[3:5], uint16(n))
}

func (c *Conn) seqNonce(seq uint64) []byte {
	binary.BigEndian.PutUint64(c.nonceBuf[4:], seq)
	return c.nonceBuf[:]
}

func (c *Conn) additionalData(typ RecordType, seq uint64, bodyLen int) []byte {
	binary.BigEndian.PutUint64(c.aadBuf[0:8], seq)
	c.aadBuf[8] = byte(typ)
	c.aadBuf[9] = 0x03
	c.aadBuf[10] = 0x03
	binary.BigEndian.PutUint16(c.aadBuf[11:13], uint16(bodyLen))
	return c.aadBuf[:]
}

// newX25519Key draws exactly 32 bytes from the deterministic simulation
// source and builds the key directly. ecdh.Curve.GenerateKey is off-limits
// here: it calls randutil.MaybeReadByte, which consumes an extra byte from
// the reader on a scheduler coin-flip, so every later draw — session
// randoms, keys, and therefore all ciphertext content — would differ run
// to run. Record lengths and timing hide that, but the replay attack
// re-issues captured ciphertext as application data, making content an
// observable the simulation must pin down.
func newX25519Key(rng *simtime.Rand) *ecdh.PrivateKey {
	var seed [32]byte
	rng.Bytes(seed[:])
	priv, err := ecdh.X25519().NewPrivateKey(seed[:])
	if err != nil {
		// X25519 accepts any 32-byte string (clamping happens in ECDH).
		panic("tlssim: keygen: " + err.Error())
	}
	return priv
}
