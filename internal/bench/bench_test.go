package bench

import (
	"bytes"
	"strings"
	"testing"
)

// recordedSamples is a captured `go test -bench -benchmem` run across two
// packages, including the noise lines a real run interleaves (headers,
// PASS/ok, benchmark log output) and shuffled result order.
const recordedSamples = `goos: linux
goarch: amd64
pkg: repro
cpu: Imaginary CPU @ 3.50GHz
BenchmarkFleetCampaign-8   	       2	 612345678 ns/op	        104.5 homes/s	       0.9062 success-frac	 1234567 B/op	   23456 allocs/op
BenchmarkTableICloudDevices-8   	       3	 412345678 ns/op	        14.60 eDelay-s/device	       0.9394 stealth-frac	  987654 B/op	    8765 allocs/op
PASS
ok  	repro	2.342s
goos: linux
goarch: amd64
pkg: repro/internal/simtime
cpu: Imaginary CPU @ 3.50GHz
BenchmarkTimerChurn-8   	 9131304	       131.0 ns/op	      80 B/op	       1 allocs/op
Benchmark log line that should be ignored
BenchmarkTimerReset-8   	12345678	        98.70 ns/op	       0 B/op	       0 allocs/op
PASS
ok  	repro/internal/simtime	3.456s
`

func parseRecorded(t *testing.T) Suite {
	t.Helper()
	results, err := Parse(strings.NewReader(recordedSamples))
	if err != nil {
		t.Fatal(err)
	}
	return NewSuite(results)
}

func TestParseRecordedSamples(t *testing.T) {
	s := parseRecorded(t)
	if len(s.Benchmarks) != 4 {
		t.Fatalf("parsed %d benchmarks, want 4", len(s.Benchmarks))
	}
	r, ok := s.Find("repro", "BenchmarkFleetCampaign")
	if !ok {
		t.Fatal("BenchmarkFleetCampaign missing")
	}
	if r.Iterations != 2 || r.NsPerOp != 612345678 || r.AllocsPerOp != 23456 || r.BytesPerOp != 1234567 {
		t.Fatalf("FleetCampaign parsed wrong: %+v", r)
	}
	if v, ok := r.Metric("homes/s"); !ok || v != 104.5 {
		t.Fatalf("homes/s = %v ok=%v, want 104.5", v, ok)
	}
	if v, ok := r.Metric("success-frac"); !ok || v != 0.9062 {
		t.Fatalf("success-frac = %v ok=%v", v, ok)
	}
	reset, ok := s.Find("repro/internal/simtime", "BenchmarkTimerReset")
	if !ok || reset.AllocsPerOp != 0 {
		t.Fatalf("TimerReset: %+v ok=%v, want 0 allocs/op present", reset, ok)
	}
}

// The emitted document must be a pure function of the recorded samples:
// same input, same bytes, every time. This is what makes the committed
// BENCH_hotpath.json diffable.
func TestWriteJSONByteDeterministic(t *testing.T) {
	var first []byte
	for i := 0; i < 5; i++ {
		var buf bytes.Buffer
		if err := parseRecorded(t).WriteJSON(&buf); err != nil {
			t.Fatal(err)
		}
		if i == 0 {
			first = buf.Bytes()
			continue
		}
		if !bytes.Equal(first, buf.Bytes()) {
			t.Fatalf("run %d produced different bytes:\n%s\nvs\n%s", i, first, buf.Bytes())
		}
	}
	if !bytes.HasPrefix(first, []byte("{\n  \"schema\": \"phantomlab-bench/v1\"")) {
		t.Fatalf("unexpected document prefix: %.60s", first)
	}
}

func TestSuiteRoundTrips(t *testing.T) {
	s := parseRecorded(t)
	var buf bytes.Buffer
	if err := s.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadSuite(&buf)
	if err != nil {
		t.Fatal(err)
	}
	var again bytes.Buffer
	if err := back.WriteJSON(&again); err != nil {
		t.Fatal(err)
	}
	var orig bytes.Buffer
	if err := s.WriteJSON(&orig); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(orig.Bytes(), again.Bytes()) {
		t.Fatal("suite did not survive a JSON round trip byte-identically")
	}
}

func TestBenchmarksSortedAndNamesCanonical(t *testing.T) {
	s := parseRecorded(t)
	for i, r := range s.Benchmarks {
		if strings.Contains(r.Name, "-") {
			t.Fatalf("name %q kept its GOMAXPROCS suffix", r.Name)
		}
		if i > 0 {
			prev := s.Benchmarks[i-1]
			if prev.Pkg+"."+prev.Name >= r.Pkg+"."+r.Name {
				t.Fatalf("benchmarks not sorted: %q before %q", prev.Name, r.Name)
			}
		}
	}
}

func TestCompareWithinTolerancePasses(t *testing.T) {
	base := parseRecorded(t)
	cur := parseRecorded(t)
	if regs := Compare(base, cur, DefaultTolerance); len(regs) != 0 {
		t.Fatalf("identical suites flagged: %v", regs)
	}
}

func TestCompareFlagsNsRegression(t *testing.T) {
	base := parseRecorded(t)
	cur := parseRecorded(t)
	for i := range cur.Benchmarks {
		if cur.Benchmarks[i].Name == "BenchmarkTimerReset" {
			cur.Benchmarks[i].NsPerOp *= 2
		}
	}
	regs := Compare(base, cur, DefaultTolerance)
	if len(regs) != 1 || !strings.Contains(regs[0], "BenchmarkTimerReset") || !strings.Contains(regs[0], "ns/op") {
		t.Fatalf("want one ns/op regression for TimerReset, got %v", regs)
	}
	// The CI preset ignores timing entirely — foreign hardware.
	if regs := Compare(base, cur, CITolerance); len(regs) != 0 {
		t.Fatalf("CI tolerance must not compare ns/op, got %v", regs)
	}
}

func TestCompareFlagsAllocRegression(t *testing.T) {
	base := parseRecorded(t)
	cur := parseRecorded(t)
	for i := range cur.Benchmarks {
		if cur.Benchmarks[i].Name == "BenchmarkFleetCampaign" {
			cur.Benchmarks[i].AllocsPerOp *= 1.5
		}
	}
	regs := Compare(base, cur, CITolerance)
	if len(regs) != 1 || !strings.Contains(regs[0], "allocs/op") {
		t.Fatalf("want one allocs/op regression, got %v", regs)
	}
}

func TestCompareAllocSlackAbsorbsSmallCounts(t *testing.T) {
	base := parseRecorded(t)
	cur := parseRecorded(t)
	for i := range cur.Benchmarks {
		if cur.Benchmarks[i].Name == "BenchmarkTimerReset" {
			cur.Benchmarks[i].AllocsPerOp = 3 // 0 -> 3: under the noise floor
		}
	}
	if regs := Compare(base, cur, DefaultTolerance); len(regs) != 0 {
		t.Fatalf("slack should absorb +3 allocs/op from zero, got %v", regs)
	}
}

// TestCompareFlagsSetMismatch pins the contract that baseline and current
// must cover the same benchmark set: a benchmark dropped from the run is
// lost coverage, one added without refreshing the baseline is a stale
// baseline, and both directions fail with the offending name and a hint
// at the fix.
func TestCompareFlagsSetMismatch(t *testing.T) {
	base := parseRecorded(t)
	cur := parseRecorded(t)
	dropped := cur.Benchmarks[len(cur.Benchmarks)-1].key()
	cur.Benchmarks = cur.Benchmarks[:len(cur.Benchmarks)-1]

	regs := Compare(base, cur, CITolerance)
	if len(regs) != 1 || !strings.Contains(regs[0], dropped) || !strings.Contains(regs[0], "missing from current run") {
		t.Fatalf("want one coverage-loss regression naming %s, got %v", dropped, regs)
	}

	// The reverse — current grew a benchmark the baseline lacks — must fail
	// just as loudly: the committed baseline is stale.
	regs = Compare(cur, base, CITolerance)
	if len(regs) != 1 || !strings.Contains(regs[0], dropped) || !strings.Contains(regs[0], "missing from baseline") {
		t.Fatalf("want one stale-baseline regression naming %s, got %v", dropped, regs)
	}
	if !strings.Contains(regs[0], "make bench-json") {
		t.Fatalf("stale-baseline message should name the fix, got %q", regs[0])
	}

	// Disjoint in both directions: every divergent name is reported, so the
	// diff is complete, not first-error-only.
	both := parseRecorded(t)
	both.Benchmarks = append([]Result{}, base.Benchmarks[:2]...)
	tail := NewSuite(base.Benchmarks[2:])
	regs = Compare(NewSuite(both.Benchmarks), tail, CITolerance)
	if len(regs) != len(base.Benchmarks) {
		t.Fatalf("disjoint suites: want %d messages (one per name), got %v", len(base.Benchmarks), regs)
	}
}

func TestReadSuiteRejectsUnknownSchema(t *testing.T) {
	if _, err := ReadSuite(strings.NewReader(`{"schema":"something-else/v9"}`)); err == nil {
		t.Fatal("unknown schema accepted")
	}
}
