// Package bench turns `go test -bench` output into a canonical,
// byte-stable JSON document and compares two such documents under a
// tolerance — the repo's perf-regression harness.
//
// The pipeline is: `make bench-json` runs the tier-1 benchmarks with
// -benchmem, pipes the text output through cmd/benchjson, and writes
// BENCH_hotpath.json. The committed copy of that file is the perf
// trajectory; CI re-runs the benchmarks and diffs the fresh document
// against the committed one with Compare, so an allocation or throughput
// regression fails loudly instead of rotting silently.
//
// Byte stability: the emitted JSON is a pure function of the parsed
// samples. Environment lines (goos, cpu, date) are dropped, benchmarks are
// sorted by (package, name), custom metrics by unit, and the GOMAXPROCS
// suffix (`-8`) is stripped from names so documents from machines with
// different core counts stay comparable.
package bench

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// Schema identifies the document layout.
const Schema = "phantomlab-bench/v1"

// Metric is one custom benchmark metric (b.ReportMetric), e.g. homes/s.
type Metric struct {
	Unit  string  `json:"unit"`
	Value float64 `json:"value"`
}

// Result is one benchmark's measurements.
type Result struct {
	// Pkg is the Go package the benchmark ran in (from the `pkg:` header).
	Pkg string `json:"pkg"`
	// Name is the benchmark name with the -GOMAXPROCS suffix stripped.
	Name string `json:"name"`
	// Iterations is b.N for the reported run.
	Iterations int64 `json:"iterations"`
	// NsPerOp is wall time per iteration.
	NsPerOp float64 `json:"ns_per_op"`
	// BytesPerOp and AllocsPerOp come from -benchmem. Allocation counts
	// are machine-independent, which makes AllocsPerOp the comparison
	// anchor that survives CI-runner speed differences.
	BytesPerOp  float64 `json:"bytes_per_op"`
	AllocsPerOp float64 `json:"allocs_per_op"`
	// Metrics holds custom units (eDelay-s/device, homes/s, …), sorted.
	Metrics []Metric `json:"metrics,omitempty"`
}

// key identifies a benchmark across documents.
func (r Result) key() string { return r.Pkg + "." + r.Name }

// Metric returns the value of a custom metric and whether it exists.
func (r Result) Metric(unit string) (float64, bool) {
	for _, m := range r.Metrics {
		if m.Unit == unit {
			return m.Value, true
		}
	}
	return 0, false
}

// Suite is a full benchmark document.
type Suite struct {
	Schema     string   `json:"schema"`
	Benchmarks []Result `json:"benchmarks"`
}

// Find returns the named benchmark in the suite.
func (s Suite) Find(pkg, name string) (Result, bool) {
	for _, r := range s.Benchmarks {
		if r.Pkg == pkg && r.Name == name {
			return r, true
		}
	}
	return Result{}, false
}

// Parse reads `go test -bench -benchmem` text output (one or more
// packages) and returns the benchmark results in input order.
func Parse(r io.Reader) ([]Result, error) {
	var out []Result
	pkg := ""
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if strings.HasPrefix(line, "pkg:") {
			pkg = strings.TrimSpace(strings.TrimPrefix(line, "pkg:"))
			continue
		}
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		res, ok, err := parseBenchLine(pkg, line)
		if err != nil {
			return nil, err
		}
		if ok {
			out = append(out, res)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

// parseBenchLine parses one result line:
//
//	BenchmarkFoo-8   	  12	  95034052 ns/op	  14.60 eDelay-s/device	  45 B/op	  3 allocs/op
//
// Lines that start with "Benchmark" but don't follow the shape (e.g. a
// benchmark's own log output) are skipped, not errors.
func parseBenchLine(pkg, line string) (Result, bool, error) {
	fields := strings.Fields(line)
	if len(fields) < 4 || len(fields)%2 != 0 {
		return Result{}, false, nil
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Result{}, false, nil
	}
	res := Result{Pkg: pkg, Name: stripProcs(fields[0]), Iterations: iters}
	seenNs := false
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return Result{}, false, fmt.Errorf("bench: bad value %q in %q", fields[i], line)
		}
		switch unit := fields[i+1]; unit {
		case "ns/op":
			res.NsPerOp = v
			seenNs = true
		case "B/op":
			res.BytesPerOp = v
		case "allocs/op":
			res.AllocsPerOp = v
		default:
			res.Metrics = append(res.Metrics, Metric{Unit: unit, Value: v})
		}
	}
	if !seenNs {
		return Result{}, false, nil
	}
	sort.Slice(res.Metrics, func(i, j int) bool { return res.Metrics[i].Unit < res.Metrics[j].Unit })
	return res, true, nil
}

// stripProcs removes the trailing -GOMAXPROCS suffix from a benchmark
// name, so the canonical name is core-count independent.
func stripProcs(name string) string {
	i := strings.LastIndex(name, "-")
	if i < 0 {
		return name
	}
	if _, err := strconv.Atoi(name[i+1:]); err != nil {
		return name
	}
	return name[:i]
}

// NewSuite builds a canonical suite: results sorted by (pkg, name), later
// duplicates of the same benchmark (e.g. -count>1) replaced by the last
// occurrence.
func NewSuite(results []Result) Suite {
	byKey := make(map[string]Result, len(results))
	for _, r := range results {
		byKey[r.key()] = r
	}
	s := Suite{Schema: Schema, Benchmarks: make([]Result, 0, len(byKey))}
	for _, r := range byKey {
		s.Benchmarks = append(s.Benchmarks, r)
	}
	sort.Slice(s.Benchmarks, func(i, j int) bool { return s.Benchmarks[i].key() < s.Benchmarks[j].key() })
	return s
}

// WriteJSON emits the suite as indented JSON with a trailing newline. The
// output is byte-deterministic for equal suites: field order is fixed by
// the struct definitions and all slices are sorted by NewSuite/Parse.
func (s Suite) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s)
}

// ReadSuite parses a JSON document produced by WriteJSON.
func ReadSuite(r io.Reader) (Suite, error) {
	var s Suite
	dec := json.NewDecoder(r)
	if err := dec.Decode(&s); err != nil {
		return Suite{}, fmt.Errorf("bench: bad suite document: %w", err)
	}
	if s.Schema != Schema {
		return Suite{}, fmt.Errorf("bench: unknown schema %q (want %s)", s.Schema, Schema)
	}
	return s, nil
}

// Tolerance bounds how much worse the current suite may be before Compare
// reports a regression. Fractions are relative increases: 0.25 allows
// +25%. A negative fraction disables that dimension entirely — CI runs on
// unknown hardware disable ns/op and lean on allocs/op, which is
// machine-independent.
type Tolerance struct {
	NsFrac float64
	// AllocFrac bounds allocs/op growth; AllocSlack is an absolute
	// allocs/op floor below which differences are noise (first-iteration
	// setup, map growth) and never flagged.
	AllocFrac  float64
	AllocSlack float64
}

// DefaultTolerance suits same-machine runs: ns/op may wobble ±40% across
// runs of macro benchmarks, allocation counts barely at all. The
// allocation budget is deliberately tight (5% + 32 allocs/op of noise
// floor): with the testbed arena giving campaigns a near-zero-alloc steady
// state, even small per-op allocation creep is a real regression.
var DefaultTolerance = Tolerance{NsFrac: 0.40, AllocFrac: 0.05, AllocSlack: 32}

// CITolerance is for foreign hardware: timing is not comparable at all,
// allocation counts are, with headroom for Go-version drift.
var CITolerance = Tolerance{NsFrac: -1, AllocFrac: 0.25, AllocSlack: 64}

// Compare diffs current against baseline and describes every regression.
// The two documents must agree on the benchmark set: a benchmark present
// only in the baseline is lost coverage, one present only in the current
// run means the committed baseline is stale. Both directions fail loudly
// with the offending names, so set drift can never hide inside a green
// run — the fix is always explicit (restore the benchmark, or re-run
// `make bench-json` and commit the refreshed document).
func Compare(baseline, current Suite, tol Tolerance) []string {
	var regs []string
	cur := make(map[string]Result, len(current.Benchmarks))
	for _, r := range current.Benchmarks {
		cur[r.key()] = r
	}
	base := make(map[string]bool, len(baseline.Benchmarks))
	for _, b := range baseline.Benchmarks {
		base[b.key()] = true
	}
	for _, c := range current.Benchmarks {
		if !base[c.key()] {
			regs = append(regs, fmt.Sprintf("%s: present in current run but missing from baseline (stale baseline: re-run `make bench-json` and commit the result)", c.key()))
		}
	}
	for _, b := range baseline.Benchmarks {
		c, ok := cur[b.key()]
		if !ok {
			regs = append(regs, fmt.Sprintf("%s: present in baseline but missing from current run (coverage loss: restore the benchmark or refresh the baseline)", b.key()))
			continue
		}
		if tol.NsFrac >= 0 && b.NsPerOp > 0 {
			limit := b.NsPerOp * (1 + tol.NsFrac)
			if c.NsPerOp > limit {
				regs = append(regs, fmt.Sprintf("%s: ns/op %.0f exceeds baseline %.0f by more than %.0f%%",
					b.key(), c.NsPerOp, b.NsPerOp, tol.NsFrac*100))
			}
		}
		if tol.AllocFrac >= 0 {
			limit := b.AllocsPerOp*(1+tol.AllocFrac) + tol.AllocSlack
			if c.AllocsPerOp > limit {
				regs = append(regs, fmt.Sprintf("%s: allocs/op %.0f exceeds baseline %.0f (limit %.0f)",
					b.key(), c.AllocsPerOp, b.AllocsPerOp, limit))
			}
		}
	}
	return regs
}

// Render writes a one-line-per-benchmark human summary, used by
// cmd/benchjson to narrate what it recorded.
func Render(w io.Writer, s Suite) {
	var buf bytes.Buffer
	for _, r := range s.Benchmarks {
		fmt.Fprintf(&buf, "%-55s %14.0f ns/op %10.0f allocs/op", r.Pkg+"."+r.Name, r.NsPerOp, r.AllocsPerOp)
		for _, m := range r.Metrics {
			fmt.Fprintf(&buf, "  %g %s", m.Value, m.Unit)
		}
		buf.WriteByte('\n')
	}
	_, _ = w.Write(buf.Bytes())
}
