#!/bin/sh
# Tier-1 verification: everything here must pass on every commit.
#
#   build    — the whole module compiles
#   vet      — static checks
#   lint     — phantomlint (internal/analysis): determinism and zero-tax
#              tracing invariants, machine-checked (DESIGN.md §10)
#   test     — full test suite
#   race     — the packages that spawn goroutines (the parallel table
#              runner, the obs snapshot/merge boundary and the fleet
#              worker pool) under the race detector
set -eu
cd "$(dirname "$0")"

echo "== go build"
go build ./...
echo "== go vet"
go vet ./...
echo "== phantomlint"
go run ./cmd/phantomlint ./...
echo "== go test"
go test ./...
echo "== go test -race (concurrency boundary)"
go test -race ./internal/experiment/ ./internal/obs/ ./internal/fleet/
echo "verify: OK"
