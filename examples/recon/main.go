// Recon demonstrates the attack's passive prelude (Sections II-C and
// IV-C): a compromised WiFi device sniffs the encrypted home traffic,
// identifies the devices by their record-length/keep-alive fingerprints,
// and infers an automation rule from cause→effect timing — all without
// decrypting a single byte, before any active step is taken.
//
// Run with: go run ./examples/recon
package main

import (
	"fmt"
	"log"
	"sort"
	"time"

	"repro/internal/experiment"
	"repro/internal/rules"
	"repro/internal/sniff"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// A home with a Ring contact sensor, an August lock, and a Kasa plug,
	// plus the automation the victim configured.
	tb, err := experiment.NewTestbed(experiment.TestbedConfig{
		Seed:    17,
		Devices: []string{"C2", "LK1", "P2"},
	})
	if err != nil {
		return err
	}
	if err := tb.Integration.AddRule(rules.Rule{
		Name:    "lock-on-close",
		Trigger: rules.Trigger{Device: "C2", Attribute: "contact", Value: "closed"},
		Actions: []rules.Action{{Kind: rules.ActionCommand, Device: "LK1", Attribute: "lock", Value: "locked"}},
	}); err != nil {
		return err
	}

	// The attacker only listens: a promiscuous capture on the WiFi medium.
	capture := sniff.NewCapture(tb.Clock)
	tb.LAN.AddTap(capture.Tap())
	tb.Start()

	// A few hours of household life.
	for i := 0; i < 5; i++ {
		tb.Clock.RunFor(20 * time.Minute)
		_ = tb.Device("C2").TriggerEvent("contact", "open")
		tb.Clock.RunFor(45 * time.Second)
		_ = tb.Device("C2").TriggerEvent("contact", "closed")
		tb.Clock.RunFor(3 * time.Minute)
		_ = tb.Device("P2").TriggerEvent("switch", "on")
	}
	tb.Clock.RunFor(10 * time.Minute)

	// Step 1: identify the devices behind each TLS flow.
	cl := sniff.NewClassifier(sniff.BuildCatalogSignatures())
	flows := cl.IdentifyAllFlows(capture, 0.5)
	fmt.Printf("observed %d flows, identified %d:\n", len(capture.Flows()), len(flows))
	var lines []string
	for flow, model := range flows {
		lines = append(lines, fmt.Sprintf("  %s -> model %s", flow.Client.Addr, model))
	}
	sort.Strings(lines)
	for _, l := range lines {
		fmt.Println(l)
	}

	// Step 2: build the message timeline and mine cause→effect patterns.
	timeline := cl.Timeline(capture.Records(), flows)
	fmt.Printf("\nrecognized %d messages in the encrypted traffic\n", len(timeline))

	res := sniff.Correlate(timeline, "C2", sniff.KindEvent, "LK1", sniff.KindCommand, 5*time.Second)
	fmt.Printf("\nhypothesis: C2 events trigger LK1 commands\n")
	fmt.Printf("  contact events observed:   %d\n", res.CauseCount)
	fmt.Printf("  lock commands observed:    %d\n", res.EffectCount)
	fmt.Printf("  followed within 5s:        %d (confidence %.0f%%)\n", res.Matched, res.Confidence()*100)
	fmt.Printf("  mean automation latency:   %v\n", res.MeanLag.Round(time.Millisecond))

	noise := sniff.Correlate(timeline, "P2", sniff.KindEvent, "LK1", sniff.KindCommand, 5*time.Second)
	fmt.Printf("\ncontrol: P2 events vs LK1 commands: confidence %.0f%%\n", noise.Confidence()*100)

	fmt.Println("\nthe attacker now knows which flow to hijack and when to strike —")
	fmt.Println("half of the contact events (the 'closed' ones) drive the lock;")
	fmt.Println("a 5-second probe delay (Case 3's verification) would confirm it")
	return nil
}
