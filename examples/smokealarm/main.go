// Smokealarm reproduces Figure 3(a): the Type-I state-update delay attack
// against a smoke detector. A kitchen fire is reported to the user's phone
// only after the attacker releases the held "smoke detected" event —
// every second of which matters.
//
// Run with: go run ./examples/smokealarm
package main

import (
	"fmt"
	"log"
	"time"

	"repro/internal/core"
	"repro/internal/experiment"
	"repro/internal/rules"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	tb, err := experiment.NewTestbed(experiment.TestbedConfig{
		Seed:    7,
		Devices: []string{"SD1"}, // Nest Protect smoke detector
	})
	if err != nil {
		return err
	}
	if err := tb.Integration.AddRule(rules.Rule{
		Name:    "smoke-alert",
		Trigger: rules.Trigger{Device: "SD1", Attribute: "smoke", Value: "detected"},
		Actions: []rules.Action{{Kind: rules.ActionNotify, Message: "SMOKE DETECTED IN KITCHEN"}},
	}); err != nil {
		return err
	}

	atk, err := tb.NewAttacker()
	if err != nil {
		return err
	}
	h, err := tb.Hijack(atk, "SD1")
	if err != nil {
		return err
	}
	tb.Start()

	// The attacker knows SD1's profile (a one-time lab effort) and arms
	// the maximum stealthy delay: release 2s before the predicted timeout.
	lab, err := tb.NewLab(h, "SD1")
	if err != nil {
		return err
	}
	lab.Trials = 2
	lab.Recovery = 30 * time.Second
	measured, err := lab.Profile()
	if err != nil {
		return err
	}
	lo, hi, _ := measured.EventWindow()
	fmt.Printf("profiled %s: e-Delay window [%v, %v]\n", measured.Model,
		lo.Round(time.Second), hi.Round(time.Second))

	h.ArmPredictor(measured)
	op := core.StateUpdateDelay(h, "SD1", 0)
	op.Cancel() // replace the manual op with the predicted-maximum one
	h.MaxEDelay("SD1", 2*time.Second)

	fireAt := tb.Clock.Now()
	if err := tb.Device("SD1").TriggerEvent("smoke", "detected"); err != nil {
		return err
	}
	fmt.Printf("[%8s] smoke fills the kitchen\n", tb.Clock.Now().Round(time.Millisecond))

	tb.Clock.RunFor(3 * time.Minute)

	// Profiling triggered its own probe events; the fire's notification is
	// the one whose cause was generated when the smoke appeared.
	for _, n := range tb.Integration.Notifications() {
		if n.Cause.GeneratedAt < fireAt {
			continue
		}
		fmt.Printf("[%8s] phone finally buzzes: %q\n", n.At.Round(time.Millisecond), n.Message)
		fmt.Printf("\nthe user learned about the fire %.0f seconds late\n", n.Latency().Seconds())
		fmt.Printf("alarms raised anywhere in the pipeline: %d\n", tb.TotalAlarmCount())
		return nil
	}
	return fmt.Errorf("notification never arrived")
}
