// Doorlock reproduces Figure 3(d) / Case 10: the Type-III disabled
// execution attack. The home auto-locks the front door when the user
// leaves — unless the attacker holds the "door unlocked" state update
// until after the "presence away" trigger has passed, leaving the door
// unlocked all day with zero alarms.
//
// Run with: go run ./examples/doorlock
package main

import (
	"fmt"
	"log"
	"time"

	"repro/internal/core"
	"repro/internal/experiment"
	"repro/internal/rules"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	tb, err := experiment.NewTestbed(experiment.TestbedConfig{
		Seed:    13,
		Devices: []string{"P1", "LK1"}, // presence sensor + August lock
	})
	if err != nil {
		return err
	}
	if err := tb.Integration.AddRule(rules.Rule{
		Name:      "lock-when-leaving",
		Trigger:   rules.Trigger{Device: "P1", Attribute: "presence", Value: "away"},
		Condition: rules.Eq{Device: "LK1", Attribute: "lock", Value: "unlocked"},
		Actions:   []rules.Action{{Kind: rules.ActionCommand, Device: "LK1", Attribute: "lock", Value: "locked"}},
	}); err != nil {
		return err
	}

	atk, err := tb.NewAttacker()
	if err != nil {
		return err
	}
	hLock, err := tb.Hijack(atk, "LK1")
	if err != nil {
		return err
	}
	hPresence, err := tb.Hijack(atk, "P1")
	if err != nil {
		return err
	}
	tb.Start()

	// Initial state: user home, door locked.
	_ = tb.Device("P1").TriggerEvent("presence", "present")
	_ = tb.Device("LK1").TriggerEvent("lock", "locked")
	tb.Clock.RunFor(5 * time.Second)

	// The attack: hold LK1's "unlocked" state update until the presence
	// trigger has gone through (plus slack). The server then evaluates
	// "lock unlocked?" against its stale "locked" belief and does nothing.
	core.DisabledExecution(hLock, "LK1", hPresence, "P1", 5*time.Second)

	fmt.Printf("[%7s] user unlocks the door and walks out\n", tb.Clock.Now().Round(time.Second))
	_ = tb.Device("LK1").TriggerEvent("lock", "unlocked")
	tb.Clock.RunFor(8 * time.Second)

	fmt.Printf("[%7s] user drives away (presence -> away)\n", tb.Clock.Now().Round(time.Second))
	_ = tb.Device("P1").TriggerEvent("presence", "away")

	// The rest of the day.
	tb.Clock.RunFor(8 * time.Hour)

	fmt.Printf("[%7s] end of day\n", tb.Clock.Now().Round(time.Second))
	fmt.Printf("\nfront door state:          %s\n", tb.Device("LK1").State("lock"))
	fmt.Printf("rule executions:           %d\n", len(tb.Integration.Engine().Executions("lock-when-leaving")))
	fmt.Printf("server-side alarms:        %d\n", tb.TotalAlarmCount())
	fmt.Println("\nthe automation that should have locked the door never fired;")
	fmt.Println("the phantom delay reordered the cyber world against the physical one")
	return nil
}
