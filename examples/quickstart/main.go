// Quickstart: build a simulated smart home, take a man-in-the-middle
// position with one attacker device, and delay a sensor event by 25
// seconds without tripping a single timer.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"time"

	"repro/internal/experiment"
	"repro/internal/rules"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// A home with a Ring contact sensor (C2) behind its base station, and
	// an automation server that pushes a notification when the door opens.
	tb, err := experiment.NewTestbed(experiment.TestbedConfig{
		Seed:    1,
		Devices: []string{"C2"},
	})
	if err != nil {
		return err
	}
	if err := tb.Integration.AddRule(rules.Rule{
		Name:    "door-alert",
		Trigger: rules.Trigger{Device: "C2", Attribute: "contact", Value: "open"},
		Actions: []rules.Action{{Kind: rules.ActionNotify, Message: "front door opened"}},
	}); err != nil {
		return err
	}

	// The attacker: one compromised WiFi device on the same LAN. It ARP-
	// poisons the base station and the router, splits the TCP connection,
	// and relays everything transparently.
	atk, err := tb.NewAttacker()
	if err != nil {
		return err
	}
	hijacker, err := tb.Hijack(atk, "C2")
	if err != nil {
		return err
	}
	tb.Start()
	fmt.Println("home is up; the Ring base station's TLS session runs through the attacker")

	// Arm the e-Delay primitive: hold the next contact event for 25s
	// (inside Ring's 60s window), then release it in order.
	hijacker.EDelay("C2", 25*time.Second)

	openedAt := tb.Clock.Now()
	if err := tb.Device("C2").TriggerEvent("contact", "open"); err != nil {
		return err
	}
	fmt.Printf("[%6s] door physically opens\n", tb.Clock.Now())

	tb.Clock.RunFor(time.Minute)

	for _, n := range tb.Integration.Notifications() {
		fmt.Printf("[%6s] user notified: %q (%.0fs after the door opened)\n",
			n.At, n.Message, (n.At - openedAt).Seconds())
	}
	fmt.Printf("server-side alarms raised: %d\n", tb.TotalAlarmCount())
	fmt.Println("the event arrived intact, late, and nobody noticed — that is the phantom delay")
	return nil
}
