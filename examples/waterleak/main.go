// Waterleak reproduces Figure 3(b): the Type-II action delay attack. A
// leak sensor should shut a smart water valve immediately; the attacker
// stacks e-Delay on the sensor's event with c-Delay on the valve's
// command, and the bathroom floods for the combined window.
//
// Run with: go run ./examples/waterleak
package main

import (
	"fmt"
	"log"
	"time"

	"repro/internal/core"
	"repro/internal/experiment"
	"repro/internal/rules"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	tb, err := experiment.NewTestbed(experiment.TestbedConfig{
		Seed:    11,
		Devices: []string{"W1", "V1"}, // Govee leak sensor + LeakSmart valve
	})
	if err != nil {
		return err
	}
	if err := tb.Integration.AddRule(rules.Rule{
		Name:    "shut-off-on-leak",
		Trigger: rules.Trigger{Device: "W1", Attribute: "water", Value: "wet"},
		Actions: []rules.Action{
			{Kind: rules.ActionCommand, Device: "V1", Attribute: "valve", Value: "closed"},
			{Kind: rules.ActionNotify, Message: "water leak! shutting the valve"},
		},
	}); err != nil {
		return err
	}

	atk, err := tb.NewAttacker()
	if err != nil {
		return err
	}
	hSensor, err := tb.Hijack(atk, "W1")
	if err != nil {
		return err
	}
	hValve, err := tb.Hijack(atk, "V1")
	if err != nil {
		return err
	}
	tb.Start()

	// Stack the two primitives: the sensor's on-demand session tolerates
	// minutes of event delay (Finding 1); the valve command adds its own
	// window on top.
	core.NewActionDelay(core.ActionDelayConfig{
		TriggerHijacker: hSensor, TriggerOrigin: "W1", TriggerHold: 90 * time.Second,
		CommandHijacker: hValve, CommandOrigin: "V1", CommandHold: 18 * time.Second,
	})

	leakAt := tb.Clock.Now()
	if err := tb.Device("W1").TriggerEvent("water", "wet"); err != nil {
		return err
	}
	fmt.Printf("[%8s] pipe bursts; sensor reports wet\n", tb.Clock.Now().Round(time.Millisecond))

	// Watch the valve while the water runs.
	for i := 0; i < 5; i++ {
		tb.Clock.RunFor(30 * time.Second)
		fmt.Printf("[%8s] valve state: %s\n",
			tb.Clock.Now().Round(time.Second), stateOr(tb, "V1", "valve", "open"))
	}

	at, ok := actuation(tb, "V1")
	if !ok {
		return fmt.Errorf("valve never closed")
	}
	fmt.Printf("\nvalve closed %.0f seconds after the leak began (stacked e-Delay + c-Delay)\n",
		(at - leakAt).Seconds())
	fmt.Printf("alarms raised: %d\n", tb.TotalAlarmCount())
	return nil
}

func stateOr(tb *experiment.Testbed, label, attr, fallback string) string {
	if v := tb.Device(label).State(attr); v != "" {
		return v
	}
	return fallback
}

func actuation(tb *experiment.Testbed, label string) (time.Duration, bool) {
	for _, e := range tb.Device(label).Log() {
		if e.Kind == "command-applied" {
			return e.At, true
		}
	}
	return 0, false
}
