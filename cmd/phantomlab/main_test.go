package main

import "testing"

func TestRunRejectsBadInput(t *testing.T) {
	if err := run([]string{}); err == nil {
		t.Fatal("no command should fail")
	}
	if err := run([]string{"bogus"}); err == nil {
		t.Fatal("unknown command should fail")
	}
	if err := run([]string{"-seed", "x", "table1"}); err == nil {
		t.Fatal("bad flag should fail")
	}
}

func TestRunFindingsCommand(t *testing.T) {
	if err := run([]string{"-seed", "3", "findings"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunVerifyCommand(t *testing.T) {
	if err := run([]string{"-seed", "3", "-trials", "1", "verify"}); err != nil {
		t.Fatal(err)
	}
}
