package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/fleet"
	"repro/internal/obs"
)

func TestRunRejectsBadInput(t *testing.T) {
	if err := run([]string{}); err == nil {
		t.Fatal("no command should fail")
	}
	if err := run([]string{"bogus"}); err == nil {
		t.Fatal("unknown command should fail")
	}
	if err := run([]string{"-seed", "x", "table1"}); err == nil {
		t.Fatal("bad flag should fail")
	}
}

func TestRunTableWithMetricsOutput(t *testing.T) {
	path := filepath.Join(t.TempDir(), "metrics.json")
	if err := run([]string{"-seed", "5", "-trials", "1", "-parallel", "2", "-metrics", path, "table2"}); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var snap obs.Snapshot
	if err := json.Unmarshal(raw, &snap); err != nil {
		t.Fatal(err)
	}
	if len(snap.Counters) == 0 || len(snap.Histograms) == 0 {
		t.Fatalf("merged snapshot looks empty: %d counters, %d histograms",
			len(snap.Counters), len(snap.Histograms))
	}
	for _, name := range []string{
		"simtime_events_total", "netsim_frames_sent_total",
		"tcpsim_segments_sent_total", "core_bridges_total",
	} {
		found := false
		for _, f := range snap.Families() {
			if f == name {
				found = true
				break
			}
		}
		if !found {
			t.Fatalf("metric family %s missing from merged snapshot", name)
		}
	}
	if snap.Counter("core_bridges_total") == 0 {
		t.Fatal("merged bridge count is zero across a whole table run")
	}
}

func TestRunFindingsCommand(t *testing.T) {
	if err := run([]string{"-seed", "3", "findings"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunVerifyCommand(t *testing.T) {
	if err := run([]string{"-seed", "3", "-trials", "1", "verify"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunFindingsMetricsOutput(t *testing.T) {
	path := filepath.Join(t.TempDir(), "metrics.json")
	if err := run([]string{"-seed", "3", "-metrics", path, "findings"}); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var snap obs.Snapshot
	if err := json.Unmarshal(raw, &snap); err != nil {
		t.Fatal(err)
	}
	if len(snap.Counters) == 0 {
		t.Fatal("findings metrics snapshot is empty")
	}
}

func TestRunMetricsOpenMetricsFormat(t *testing.T) {
	path := filepath.Join(t.TempDir(), "metrics.om")
	if err := run([]string{"-seed", "3", "-metrics", path, "-metrics-format", "openmetrics", "findings"}); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(raw, []byte("# TYPE ")) || !bytes.HasSuffix(raw, []byte("# EOF\n")) {
		t.Fatalf("not OpenMetrics exposition:\n%.400s", raw)
	}
}

func TestRunTraceOutput(t *testing.T) {
	dir := t.TempDir()
	chrome := filepath.Join(dir, "trace.json")
	if err := run([]string{"-seed", "5", "-trials", "1", "-trace", chrome, "verify"}); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(chrome)
	if err != nil {
		t.Fatal(err)
	}
	var file struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(raw, &file); err != nil {
		t.Fatalf("trace not valid JSON: %v", err)
	}
	if len(file.TraceEvents) == 0 {
		t.Fatal("trace has no events")
	}

	text := filepath.Join(dir, "trace.txt")
	if err := run([]string{"-seed", "5", "-trials", "1", "-trace", text, "-trace-format", "text", "verify"}); err != nil {
		t.Fatal(err)
	}
	txt, err := os.ReadFile(text)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(txt, []byte("=== C1 ===")) {
		t.Fatalf("text trace missing per-device section:\n%.400s", txt)
	}
}

func TestRunTraceDeterministic(t *testing.T) {
	dir := t.TempDir()
	outA := filepath.Join(dir, "a.json")
	outB := filepath.Join(dir, "b.json")
	for _, p := range []string{outA, outB} {
		if err := run([]string{"-seed", "5", "-trials", "1", "-trace", p, "verify"}); err != nil {
			t.Fatal(err)
		}
	}
	a, err := os.ReadFile(outA)
	if err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(outB)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Fatal("same-seed trace files differ")
	}
}

func TestRunTraceRejectsBadUsage(t *testing.T) {
	path := filepath.Join(t.TempDir(), "t.json")
	if err := run([]string{"-trace", path, "recon"}); err == nil {
		t.Fatal("-trace on a traceless command accepted")
	}
	if err := run([]string{"-trace", path, "-trace-format", "svg", "verify"}); err == nil {
		t.Fatal("bad -trace-format accepted")
	}
	if err := run([]string{"-metrics", path, "-metrics-format", "yaml", "findings"}); err == nil {
		t.Fatal("bad -metrics-format accepted")
	}
	if _, statErr := os.Stat(path); statErr == nil {
		t.Fatal("rejected run still wrote a file")
	}
}

func TestWriteMetricsRejectsEmpty(t *testing.T) {
	path := filepath.Join(t.TempDir(), "metrics.json")
	err := writeMetrics(path, "json", "recon", obs.NewAccumulator())
	if err == nil {
		t.Fatal("empty snapshot set should be rejected")
	}
	if _, statErr := os.Stat(path); statErr == nil {
		t.Fatal("rejected -metrics run still wrote a file")
	}
}

func TestRunFleetCommand(t *testing.T) {
	dir := t.TempDir()
	outA := filepath.Join(dir, "a.json")
	outB := filepath.Join(dir, "b.json")
	if err := run([]string{"fleet", "-homes", "6", "-workers", "1", "-seed", "9", "-out", outA,
		"-checkpoint", filepath.Join(dir, "ck-a.json")}); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"fleet", "-homes", "6", "-workers", "3", "-seed", "9", "-out", outB,
		"-checkpoint", filepath.Join(dir, "ck-b.json")}); err != nil {
		t.Fatal(err)
	}
	a, err := os.ReadFile(outA)
	if err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(outB)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Fatal("fleet results differ across worker counts")
	}
	var res fleet.Result
	if err := json.Unmarshal(a, &res); err != nil {
		t.Fatal(err)
	}
	if res.TotalTrials == 0 || len(res.PerModel) == 0 {
		t.Fatalf("fleet result looks empty: %+v", res)
	}
}

// TestRunFleetServeIdentity is the acceptance gate for -serve: a campaign
// scraped live over HTTP writes byte-identical results to one run dark.
func TestRunFleetServeIdentity(t *testing.T) {
	dir := t.TempDir()
	outDark := filepath.Join(dir, "dark.json")
	outServed := filepath.Join(dir, "served.json")
	if err := run([]string{"fleet", "-homes", "8", "-workers", "2", "-seed", "11",
		"-out", outDark}); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"fleet", "-homes", "8", "-workers", "2", "-seed", "11",
		"-serve", "127.0.0.1:0", "-out", outServed}); err != nil {
		t.Fatal(err)
	}
	dark, err := os.ReadFile(outDark)
	if err != nil {
		t.Fatal(err)
	}
	served, err := os.ReadFile(outServed)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(dark, served) {
		t.Fatal("fleet results differ with -serve on")
	}
}

func TestRunReplayCommand(t *testing.T) {
	dir := t.TempDir()
	metrics := filepath.Join(dir, "metrics.json")
	trace := filepath.Join(dir, "trace.json")
	if err := run([]string{"-seed", "2", "-metrics", metrics, "-trace", trace, "replay"}); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(metrics)
	if err != nil {
		t.Fatal(err)
	}
	var snap obs.Snapshot
	if err := json.Unmarshal(raw, &snap); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"replay_injected_total", "replay_accepted_total", "replay_rejected_total"} {
		found := false
		for _, f := range snap.Families() {
			if f == name {
				found = true
				break
			}
		}
		if !found {
			t.Fatalf("metric family %s missing from replay snapshot", name)
		}
	}
	tr, err := os.ReadFile(trace)
	if err != nil {
		t.Fatal(err)
	}
	var file struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(tr, &file); err != nil {
		t.Fatalf("replay trace not valid JSON: %v", err)
	}
	if len(file.TraceEvents) == 0 {
		t.Fatal("replay trace has no events")
	}
}

func TestRunFleetReplayCampaign(t *testing.T) {
	dir := t.TempDir()
	specPath := filepath.Join(dir, "spec.json")
	spec := `{"attack":"replay","targets":{"classes":["plug","thermostat","water sensor"],"perHome":2}}`
	if err := os.WriteFile(specPath, []byte(spec), 0o644); err != nil {
		t.Fatal(err)
	}
	out := filepath.Join(dir, "out.json")
	if err := run([]string{"fleet", "-homes", "8", "-seed", "11", "-campaign", specPath, "-out", out}); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var res fleet.Result
	if err := json.Unmarshal(raw, &res); err != nil {
		t.Fatal(err)
	}
	if res.TotalTrials == 0 {
		t.Fatalf("replay campaign ran no trials: %+v", res)
	}
}

// TestRunFleetMultiProcessMerge drives the whole multi-process flow
// through the CLI: three -shard-range invocations (distinct worker
// counts, as three separate processes would have) write partials, -merge
// folds them, and both the result and the -metrics snapshot are
// byte-identical to one single-process run.
func TestRunFleetMultiProcessMerge(t *testing.T) {
	dir := t.TempDir()
	campaign := []string{"-homes", "40", "-shard-size", "4", "-seed", "13"}

	single := filepath.Join(dir, "single.json")
	singleMetrics := filepath.Join(dir, "single-metrics.json")
	args := append([]string{"fleet"}, campaign...)
	if err := run(append(args, "-out", single, "-metrics", singleMetrics)); err != nil {
		t.Fatal(err)
	}

	var parts []string
	for i, r := range []string{"0:4", "4:7", "7:10"} {
		p := filepath.Join(dir, "part"+r[0:1]+".json")
		workerArgs := append([]string{"fleet", "-workers", []string{"1", "2", "3"}[i]}, campaign...)
		if err := run(append(workerArgs, "-shard-range", r, "-partial", p)); err != nil {
			t.Fatalf("range %s: %v", r, err)
		}
		parts = append(parts, p)
	}

	merged := filepath.Join(dir, "merged.json")
	mergedMetrics := filepath.Join(dir, "merged-metrics.json")
	mergeArgs := append([]string{"fleet", "-merge", "-out", merged, "-metrics", mergedMetrics}, parts...)
	if err := run(mergeArgs); err != nil {
		t.Fatal(err)
	}

	for _, pair := range [][2]string{{single, merged}, {singleMetrics, mergedMetrics}} {
		a, err := os.ReadFile(pair[0])
		if err != nil {
			t.Fatal(err)
		}
		b, err := os.ReadFile(pair[1])
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(a, b) {
			t.Errorf("%s and %s differ — multi-process merge is not byte-identical", pair[0], pair[1])
		}
	}
}

// TestRunFleetShardRangeResume: a range worker's -checkpoint resumes mid-
// range and still writes the identical partial file.
func TestRunFleetShardRangeResume(t *testing.T) {
	dir := t.TempDir()
	campaign := []string{"-homes", "24", "-shard-size", "4", "-seed", "7"}
	clean := filepath.Join(dir, "clean.json")
	args := append([]string{"fleet"}, campaign...)
	if err := run(append(args, "-shard-range", "2:5", "-partial", clean)); err != nil {
		t.Fatal(err)
	}
	// Checkpointed worker: first run writes its final checkpoint; a rerun
	// resumes from it (everything cached) and must emit the same partial.
	ck := filepath.Join(dir, "ck.json")
	resumed := filepath.Join(dir, "resumed.json")
	for i := 0; i < 2; i++ {
		if err := run(append(args, "-shard-range", "2:5", "-partial", resumed, "-checkpoint", ck)); err != nil {
			t.Fatalf("pass %d: %v", i, err)
		}
	}
	a, err := os.ReadFile(clean)
	if err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(resumed)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Error("checkpoint-resumed range partial differs from a clean worker's")
	}
}

func TestRunFleetRejectsBadRangeUsage(t *testing.T) {
	dir := t.TempDir()
	part := filepath.Join(dir, "p.json")
	for name, args := range map[string][]string{
		"range without -partial":  {"fleet", "-shard-range", "0:2"},
		"partial without range":   {"fleet", "-partial", part},
		"malformed range":         {"fleet", "-shard-range", "2", "-partial", part},
		"non-numeric range":       {"fleet", "-shard-range", "a:b", "-partial", part},
		"range with -out":         {"fleet", "-shard-range", "0:2", "-partial", part, "-out", filepath.Join(dir, "o.json")},
		"range with -metrics":     {"fleet", "-shard-range", "0:2", "-partial", part, "-metrics", filepath.Join(dir, "m.json")},
		"out-of-campaign range":   {"fleet", "-homes", "8", "-shard-size", "4", "-shard-range", "0:5", "-partial", part},
		"merge without files":     {"fleet", "-merge"},
		"merge with campaign":     {"fleet", "-merge", "-homes", "8", part},
		"merge with missing file": {"fleet", "-merge", filepath.Join(dir, "nope.json")},
	} {
		if err := run(args); err == nil {
			t.Errorf("%s accepted", name)
		}
	}
}

func TestRunFleetRejectsBadSpec(t *testing.T) {
	dir := t.TempDir()
	specPath := filepath.Join(dir, "spec.json")
	if err := os.WriteFile(specPath, []byte(`{"attack":"ddos"}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"fleet", "-homes", "1", "-campaign", specPath}); err == nil {
		t.Fatal("invalid campaign spec accepted")
	}
	if err := run([]string{"fleet", "-campaign", filepath.Join(dir, "missing.json")}); err == nil {
		t.Fatal("missing campaign spec accepted")
	}
	if err := run([]string{"fleet", "extra"}); err == nil {
		t.Fatal("positional arg accepted")
	}
}
