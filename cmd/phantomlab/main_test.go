package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/obs"
)

func TestRunRejectsBadInput(t *testing.T) {
	if err := run([]string{}); err == nil {
		t.Fatal("no command should fail")
	}
	if err := run([]string{"bogus"}); err == nil {
		t.Fatal("unknown command should fail")
	}
	if err := run([]string{"-seed", "x", "table1"}); err == nil {
		t.Fatal("bad flag should fail")
	}
}

func TestRunTableWithMetricsOutput(t *testing.T) {
	path := filepath.Join(t.TempDir(), "metrics.json")
	if err := run([]string{"-seed", "5", "-trials", "1", "-parallel", "2", "-metrics", path, "table2"}); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var snap obs.Snapshot
	if err := json.Unmarshal(raw, &snap); err != nil {
		t.Fatal(err)
	}
	if len(snap.Counters) == 0 || len(snap.Histograms) == 0 {
		t.Fatalf("merged snapshot looks empty: %d counters, %d histograms",
			len(snap.Counters), len(snap.Histograms))
	}
	for _, name := range []string{
		"simtime_events_total", "netsim_frames_sent_total",
		"tcpsim_segments_sent_total", "core_bridges_total",
	} {
		found := false
		for _, f := range snap.Families() {
			if f == name {
				found = true
				break
			}
		}
		if !found {
			t.Fatalf("metric family %s missing from merged snapshot", name)
		}
	}
	if snap.Counter("core_bridges_total") == 0 {
		t.Fatal("merged bridge count is zero across a whole table run")
	}
}

func TestRunFindingsCommand(t *testing.T) {
	if err := run([]string{"-seed", "3", "findings"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunVerifyCommand(t *testing.T) {
	if err := run([]string{"-seed", "3", "-trials", "1", "verify"}); err != nil {
		t.Fatal(err)
	}
}
