// Command phantomlab reproduces the paper's evaluation: the Table I/II
// timeout measurements, the Table III proof-of-concept attacks, the
// verification test, the three session-behaviour findings, the
// countermeasure studies, and fleet-scale attack campaigns over synthetic
// home populations.
//
// Usage:
//
//	phantomlab [flags] <table1|table2|table3|verify|findings|defense|recon|ablation|all>
//	phantomlab fleet [-homes N] [-workers W] [-seed S] [-campaign spec.json]
//	                 [-checkpoint state.json] [-out results.json]
//
// Flags:
//
//	-seed N      deterministic seed (default 1)
//	-trials N    measurement trials per message class (default 3; paper: 20)
//	-recovery D  inter-trial recovery (default 30s; paper: 2m)
//	-metrics F   write the run's merged metrics snapshot to F
//	             (table1, table2, table3, verify, findings, defense)
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"repro/internal/device"
	"repro/internal/experiment"
	"repro/internal/fleet"
	"repro/internal/obs"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "phantomlab:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("phantomlab", flag.ContinueOnError)
	seed := fs.Int64("seed", 1, "deterministic seed")
	trials := fs.Int("trials", 3, "trials per message class (paper uses 20)")
	recovery := fs.Duration("recovery", 30*time.Second, "inter-trial recovery (paper uses 2m)")
	jsonOut := fs.Bool("json", false, "emit JSON instead of rendered tables (table1/table2/table3)")
	parallel := fs.Int("parallel", 0, "measure tables with N concurrent testbeds (0 = serial)")
	metricsOut := fs.String("metrics", "", "write merged metrics snapshot to this JSON file (table1/table2/table3/verify/findings/defense)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	// Flag parsing stops at the first positional, so subcommand flags
	// arrive in fs.Args()[1:].
	if fs.NArg() >= 1 && fs.Arg(0) == "fleet" {
		return runFleet(fs.Args()[1:])
	}
	if fs.NArg() != 1 {
		fs.Usage()
		return fmt.Errorf("expected one command: table1|table2|table3|verify|findings|defense|recon|ablation|all|fleet")
	}
	cmd := fs.Arg(0)

	opts := experiment.TableOptions{Seed: *seed, Trials: *trials, Recovery: *recovery}
	out := os.Stdout

	// Metrics snapshots from every command of this invocation, for
	// -metrics: per-testbed snapshots merge into a single file.
	var metricSnaps []obs.Snapshot

	runOne := func(name string) error {
		switch name {
		case "table1":
			rows := runTable(cloudLabels(), opts, *parallel)
			metricSnaps = append(metricSnaps, experiment.MergedMetrics(rows))
			if *jsonOut {
				return experiment.WriteRowsJSON(out, rows)
			}
			experiment.FormatRows(out, "Table I — cloud-connected devices (33)", rows)
		case "table2":
			t2 := opts
			t2.UnboundedDemo = 2 * time.Hour
			rows := runTable(localLabels(), t2, *parallel)
			metricSnaps = append(metricSnaps, experiment.MergedMetrics(rows))
			if *jsonOut {
				return experiment.WriteRowsJSON(out, rows)
			}
			experiment.FormatRows(out, "Table II — HomeKit accessories on a local hub (17)", rows)
		case "table3":
			results := experiment.RunCases(experiment.Table3Cases(), *seed+500)
			for _, r := range results {
				metricSnaps = append(metricSnaps, r.Metrics)
			}
			if *jsonOut {
				return experiment.WriteCasesJSON(out, results)
			}
			experiment.FormatCaseResults(out, results)
		case "verify":
			labels := []string{"C1", "L2", "CM1", "K2", "M7", "A1"}
			results := experiment.RunVerification(labels, experiment.VerifyOptions{Seed: *seed + 600, Trials: *trials})
			for _, r := range results {
				metricSnaps = append(metricSnaps, r.Metrics)
			}
			experiment.FormatVerifyResults(out, results)
		case "findings":
			results := experiment.RunFindings(*seed + 700)
			for _, r := range results {
				metricSnaps = append(metricSnaps, r.Metrics)
			}
			experiment.FormatFindings(out, results)
		case "defense":
			ack := experiment.RunAckTimeoutDefense("C2",
				[]time.Duration{20 * time.Second, 10 * time.Second, 5 * time.Second}, *seed+800)
			ts := experiment.RunTimestampDefense(*seed + 820)
			for _, r := range ack {
				metricSnaps = append(metricSnaps, r.Metrics)
			}
			metricSnaps = append(metricSnaps, ts.Metrics)
			experiment.FormatDefenseResults(out, ack, ts)
		case "recon":
			labels := []string{"C1", "M1", "L2", "M2", "C2", "M3", "LK1", "P2", "CM1", "K2", "SD1", "P4"}
			results := experiment.RunReconCoverage(labels, []int{3, 6, 10, 100}, *seed+1200)
			experiment.FormatRecon(out, results)
		case "ablation":
			margins := experiment.RunMarginAblation("C1",
				[]time.Duration{time.Second, 2 * time.Second, 5 * time.Second, 10 * time.Second}, *trials, *seed+900)
			boundary := experiment.RunDetectionBoundary("C1",
				[]time.Duration{40 * time.Second, 45 * time.Second, 50 * time.Second, 60 * time.Second}, *seed+910)
			experiment.FormatAblation(out, margins, boundary)
		default:
			return fmt.Errorf("unknown command %q", name)
		}
		fmt.Fprintln(out)
		return nil
	}

	if cmd == "all" {
		for _, name := range []string{"table1", "table2", "table3", "verify", "findings", "defense", "recon", "ablation"} {
			if err := runOne(name); err != nil {
				return err
			}
		}
		return writeMetrics(*metricsOut, cmd, metricSnaps)
	}
	if err := runOne(cmd); err != nil {
		return err
	}
	return writeMetrics(*metricsOut, cmd, metricSnaps)
}

// runFleet executes the fleet subcommand: a sharded attack campaign over a
// synthetic population of homes.
func runFleet(args []string) error {
	fs := flag.NewFlagSet("phantomlab fleet", flag.ContinueOnError)
	homes := fs.Int("homes", 100, "population size")
	workers := fs.Int("workers", 1, "worker-pool size (wall-clock only; results are identical for any value)")
	seed := fs.Int64("seed", 1, "population master seed")
	campaignPath := fs.String("campaign", "", "campaign spec JSON file (default: built-in edelay-sensors campaign)")
	checkpointPath := fs.String("checkpoint", "", "persist completed shards to this JSON file and resume from it")
	outPath := fs.String("out", "", "write aggregated results JSON to this file (default stdout)")
	shardSize := fs.Int("shard-size", fleet.DefaultShardSize, "homes per checkpoint shard")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 0 {
		return fmt.Errorf("fleet takes no positional arguments, got %q", fs.Args())
	}

	spec := fleet.DefaultSpec()
	if *campaignPath != "" {
		data, err := os.ReadFile(*campaignPath)
		if err != nil {
			return fmt.Errorf("campaign spec: %w", err)
		}
		if spec, err = fleet.ParseSpec(data); err != nil {
			return err
		}
	}

	c := fleet.Campaign{
		Spec:           spec,
		Homes:          *homes,
		Workers:        *workers,
		ShardSize:      *shardSize,
		Seed:           *seed,
		CheckpointPath: *checkpointPath,
		Progress: func(done, total int) {
			fmt.Fprintf(os.Stderr, "fleet: %d/%d shards\n", done, total)
		},
	}
	res, err := c.Run()
	if err != nil {
		return err
	}

	var w io.Writer = os.Stdout
	if *outPath != "" {
		f, err := os.Create(*outPath)
		if err != nil {
			return fmt.Errorf("fleet output: %w", err)
		}
		defer f.Close()
		w = f
	}
	return res.WriteJSON(w)
}

// writeMetrics dumps the merged metrics snapshot of the run to path. A run
// that produced no snapshots has nothing meaningful to write — that is a
// usage error, not an empty file.
func writeMetrics(path, cmd string, snaps []obs.Snapshot) error {
	if path == "" {
		return nil
	}
	if len(snaps) == 0 {
		return fmt.Errorf("-metrics: command %q produces no metrics (supported: table1, table2, table3, verify, findings, defense, all)", cmd)
	}
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("metrics output: %w", err)
	}
	if err := experiment.WriteSnapshotsJSON(f, snaps); err != nil {
		f.Close()
		return fmt.Errorf("metrics output: %w", err)
	}
	return f.Close()
}

func runTable(labels []string, opts experiment.TableOptions, parallel int) []experiment.TableRow {
	if parallel > 0 {
		return experiment.RunTableParallel(labels, opts, parallel)
	}
	return experiment.RunTable(labels, opts)
}

func cloudLabels() []string {
	var out []string
	for _, p := range device.CloudProfiles() {
		out = append(out, p.Label)
	}
	return out
}

func localLabels() []string {
	var out []string
	for _, p := range device.LocalProfiles() {
		out = append(out, p.Label)
	}
	return out
}
