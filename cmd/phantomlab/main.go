// Command phantomlab reproduces the paper's evaluation: the Table I/II
// timeout measurements, the Table III proof-of-concept attacks, the
// verification test, the three session-behaviour findings, the
// countermeasure studies, the record-and-replay vulnerability assessment,
// and fleet-scale attack campaigns over synthetic home populations.
//
// Usage:
//
//	phantomlab [flags] <table1|table2|table3|verify|findings|defense|recon|ablation|replay|all>
//	phantomlab fleet [-homes N] [-workers W] [-seed S] [-campaign spec.json]
//	                 [-checkpoint state.json] [-out results.json] [-serve ADDR]
//	                 [-metrics F] [-metrics-format X]
//	phantomlab fleet ...campaign flags... -shard-range A:B -partial part.json
//	phantomlab fleet -merge [-out results.json] [-metrics F] part1.json part2.json ...
//
// A fleet campaign can be split across processes: each worker process runs
// `-shard-range A:B` over its slice of the shard index space and writes a
// mergeable partial; `-merge` folds the partials — for any split — into a
// result byte-identical to a single-process run.
//
// Flags:
//
//	-seed N            deterministic seed (default 1)
//	-trials N          measurement trials per message class (default 3; paper: 20)
//	-recovery D        inter-trial recovery (default 30s; paper: 2m)
//	-metrics F         write the run's merged metrics snapshot to F
//	-metrics-format X  metrics encoding: json (default) or openmetrics
//	-trace F           write the run's attack flight-recorder timeline to F
//	-trace-format X    trace encoding: chrome (default, Perfetto-loadable) or text
//	-serve ADDR        serve the live observability plane (/metrics, /progress,
//	                   /trace, /healthz, /debug/pprof) on ADDR while the run executes
//	-cpuprofile F      write a CPU profile of the run to F (go tool pprof)
//	-memprofile F      write a heap profile taken at exit to F
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/device"
	"repro/internal/experiment"
	"repro/internal/fleet"
	"repro/internal/obs"
	"repro/internal/obs/serve"
	"repro/internal/obs/timeline"
)

// metricsCommands lists every command whose run produces observability
// snapshots, i.e. the commands -metrics accepts. traceCommands is the
// subset whose per-run snapshots carry flight-recorder events, i.e. the
// commands -trace accepts.
var (
	metricsCommands = []string{"table1", "table2", "table3", "verify", "findings", "defense", "replay", "all"}
	traceCommands   = []string{"table1", "table2", "table3", "verify", "replay", "all"}
)

// cliTraceCap sizes the flight-recorder ring for -trace runs: large enough
// that a whole table row survives without eviction, small enough to stay
// cheap.
const cliTraceCap = 65536

// writeHeapProfile records an end-of-run allocation profile. A GC first
// makes the live-heap numbers exact rather than whatever the last cycle
// left behind.
func writeHeapProfile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	runtime.GC()
	return pprof.WriteHeapProfile(f)
}

func supports(cmds []string, cmd string) bool {
	for _, c := range cmds {
		if c == cmd {
			return true
		}
	}
	return false
}

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "phantomlab:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("phantomlab", flag.ContinueOnError)
	seed := fs.Int64("seed", 1, "deterministic seed")
	trials := fs.Int("trials", 3, "trials per message class (paper uses 20)")
	recovery := fs.Duration("recovery", 30*time.Second, "inter-trial recovery (paper uses 2m)")
	jsonOut := fs.Bool("json", false, "emit JSON instead of rendered tables (table1/table2/table3)")
	parallel := fs.Int("parallel", 0, "measure tables with N concurrent testbeds (0 = serial)")
	metricsOut := fs.String("metrics", "", "write merged metrics snapshot to this file ("+strings.Join(metricsCommands, "/")+")")
	metricsFormat := fs.String("metrics-format", "json", "metrics encoding: json or openmetrics")
	traceOut := fs.String("trace", "", "write attack flight-recorder timeline to this file ("+strings.Join(traceCommands, "/")+")")
	traceFormat := fs.String("trace-format", "chrome", "trace encoding: chrome (Perfetto-loadable) or text")
	serveAddr := fs.String("serve", "", "serve the live observability plane on this address (e.g. :9090) while the run executes")
	cpuProfile := fs.String("cpuprofile", "", "write a CPU profile of the run to this file")
	memProfile := fs.String("memprofile", "", "write a heap profile taken at exit to this file")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			return fmt.Errorf("-cpuprofile: %w", err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			return fmt.Errorf("-cpuprofile: %w", err)
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}
	if *memProfile != "" {
		defer func() {
			if err := writeHeapProfile(*memProfile); err != nil {
				fmt.Fprintln(os.Stderr, "phantomlab: -memprofile:", err)
			}
		}()
	}
	switch *metricsFormat {
	case "json", "openmetrics":
	default:
		return fmt.Errorf("-metrics-format: unknown format %q (supported: json, openmetrics)", *metricsFormat)
	}
	switch *traceFormat {
	case "chrome", "text":
	default:
		return fmt.Errorf("-trace-format: unknown format %q (supported: chrome, text)", *traceFormat)
	}
	// Flag parsing stops at the first positional, so subcommand flags
	// arrive in fs.Args()[1:].
	if fs.NArg() >= 1 && fs.Arg(0) == "fleet" {
		return runFleet(fs.Args()[1:], *serveAddr, *metricsOut, *metricsFormat)
	}
	if fs.NArg() != 1 {
		fs.Usage()
		return fmt.Errorf("expected one command: table1|table2|table3|verify|findings|defense|recon|ablation|replay|all|fleet")
	}
	cmd := fs.Arg(0)
	if *traceOut != "" && !supports(traceCommands, cmd) {
		return fmt.Errorf("-trace: command %q records no timeline (supported: %s)", cmd, strings.Join(traceCommands, ", "))
	}

	opts := experiment.TableOptions{Seed: *seed, Trials: *trials, Recovery: *recovery}
	// -serve engages the flight recorder like -trace does: the live /trace
	// endpoint is only useful if rows record events. (Precedent: -trace
	// already changes what -metrics sees, since snapshots carry the ring.)
	if *traceOut != "" || *serveAddr != "" {
		opts.TraceCap = cliTraceCap
	}
	out := os.Stdout

	// Metrics snapshots from every command of this invocation stream into
	// one accumulator, the single source behind both the -metrics file and
	// the live /metrics endpoint. Trace sources are the per-run event
	// streams behind -trace and /trace, one named timeline per table row /
	// case / verified device; the store is mutex-guarded because the serve
	// plane reads it mid-run.
	acc := obs.NewAccumulator()
	var traceSrcs traceStore

	if *serveAddr != "" {
		srv, err := serve.Start(*serveAddr, serve.Plane{
			Metrics:      acc.State,
			TraceSources: traceSrcs.snapshot,
		})
		if err != nil {
			return err
		}
		defer srv.Close()
		fmt.Fprintf(os.Stderr, "phantomlab: serving observability plane on http://%s\n", srv.Addr())
	}

	rowSources := func(rows []experiment.TableRow) {
		for _, r := range rows {
			if len(r.Metrics.Trace) > 0 {
				traceSrcs.add(timeline.Source{Name: r.Label, Events: r.Metrics.Trace})
			}
		}
	}

	runOne := func(name string) error {
		switch name {
		case "table1":
			rows := runTable(cloudLabels(), opts, *parallel)
			acc.Add(experiment.MergedMetrics(rows))
			rowSources(rows)
			if *jsonOut {
				return experiment.WriteRowsJSON(out, rows)
			}
			experiment.FormatRows(out, "Table I — cloud-connected devices (33)", rows)
		case "table2":
			t2 := opts
			t2.UnboundedDemo = 2 * time.Hour
			rows := runTable(localLabels(), t2, *parallel)
			acc.Add(experiment.MergedMetrics(rows))
			rowSources(rows)
			if *jsonOut {
				return experiment.WriteRowsJSON(out, rows)
			}
			experiment.FormatRows(out, "Table II — HomeKit accessories on a local hub (17)", rows)
		case "table3":
			cases := experiment.Table3Cases()
			if opts.TraceCap != 0 {
				for i := range cases {
					cases[i].TraceCap = opts.TraceCap
				}
			}
			results := experiment.RunCases(cases, *seed+500)
			for _, r := range results {
				acc.Add(r.Metrics)
				if len(r.Metrics.Trace) > 0 {
					traceSrcs.add(timeline.Source{
						Name:   fmt.Sprintf("case-%d", r.Case.ID),
						Events: r.Metrics.Trace,
					})
				}
			}
			if *jsonOut {
				return experiment.WriteCasesJSON(out, results)
			}
			experiment.FormatCaseResults(out, results)
		case "verify":
			labels := []string{"C1", "L2", "CM1", "K2", "M7", "A1"}
			results := experiment.RunVerification(labels, experiment.VerifyOptions{
				Seed: *seed + 600, Trials: *trials, TraceCap: opts.TraceCap,
			})
			for _, r := range results {
				acc.Add(r.Metrics)
				if len(r.Metrics.Trace) > 0 {
					traceSrcs.add(timeline.Source{Name: r.Label, Events: r.Metrics.Trace})
				}
			}
			experiment.FormatVerifyResults(out, results)
		case "findings":
			results := experiment.RunFindings(*seed + 700)
			for _, r := range results {
				acc.Add(r.Metrics)
			}
			experiment.FormatFindings(out, results)
		case "defense":
			ack := experiment.RunAckTimeoutDefense("C2",
				[]time.Duration{20 * time.Second, 10 * time.Second, 5 * time.Second}, *seed+800)
			ts := experiment.RunTimestampDefense(*seed + 820)
			for _, r := range ack {
				acc.Add(r.Metrics)
			}
			acc.Add(ts.Metrics)
			experiment.FormatDefenseResults(out, ack, ts)
		case "recon":
			labels := []string{"C1", "M1", "L2", "M2", "C2", "M3", "LK1", "P2", "CM1", "K2", "SD1", "P4"}
			results := experiment.RunReconCoverage(labels, []int{3, 6, 10, 100}, *seed+1200)
			experiment.FormatRecon(out, results)
		case "replay":
			results := experiment.RunReplayAssessment(catalogLabels(), experiment.ReplayOptions{
				Seed: *seed + 1300, TraceCap: opts.TraceCap,
			})
			for _, r := range results {
				acc.Add(r.Metrics)
				if len(r.Metrics.Trace) > 0 {
					traceSrcs.add(timeline.Source{Name: "replay-" + r.Label, Events: r.Metrics.Trace})
				}
			}
			experiment.FormatReplayTable(out, results)
		case "ablation":
			margins := experiment.RunMarginAblation("C1",
				[]time.Duration{time.Second, 2 * time.Second, 5 * time.Second, 10 * time.Second}, *trials, *seed+900)
			boundary := experiment.RunDetectionBoundary("C1",
				[]time.Duration{40 * time.Second, 45 * time.Second, 50 * time.Second, 60 * time.Second}, *seed+910)
			experiment.FormatAblation(out, margins, boundary)
		default:
			return fmt.Errorf("unknown command %q", name)
		}
		fmt.Fprintln(out)
		return nil
	}

	if cmd == "all" {
		for _, name := range []string{"table1", "table2", "table3", "verify", "findings", "defense", "recon", "ablation", "replay"} {
			if err := runOne(name); err != nil {
				return err
			}
		}
	} else if err := runOne(cmd); err != nil {
		return err
	}
	if err := writeMetrics(*metricsOut, *metricsFormat, cmd, acc); err != nil {
		return err
	}
	return writeTrace(*traceOut, *traceFormat, cmd, traceSrcs.snapshot())
}

// runFleet executes the fleet subcommand: a sharded attack campaign over a
// synthetic population of homes — whole, one shard range of it, or a merge
// of completed range partials. inheritServe/inheritMetrics carry -serve,
// -metrics and -metrics-format given before the subcommand word; fleet's
// own flags override them.
func runFleet(args []string, inheritServe, inheritMetrics, inheritMetricsFormat string) error {
	fs := flag.NewFlagSet("phantomlab fleet", flag.ContinueOnError)
	homes := fs.Int("homes", 100, "population size")
	workers := fs.Int("workers", 1, "worker-pool size (wall-clock only; results are identical for any value)")
	seed := fs.Int64("seed", 1, "population master seed")
	campaignPath := fs.String("campaign", "", "campaign spec JSON file (default: built-in edelay-sensors campaign)")
	checkpointPath := fs.String("checkpoint", "", "persist the campaign's compacted partial aggregate to this JSON file and resume from it")
	outPath := fs.String("out", "", "write aggregated results JSON to this file (default stdout)")
	shardSize := fs.Int("shard-size", fleet.DefaultShardSize, "homes per checkpoint shard")
	reuse := fs.Bool("reuse", false, "recycle one testbed arena per worker (allocation only; results are identical either way)")
	serveAddr := fs.String("serve", inheritServe, "serve the live observability plane on this address (e.g. :9090) while the campaign runs")
	metricsOut := fs.String("metrics", inheritMetrics, "write the campaign's merged metrics snapshot to this file")
	metricsFormat := fs.String("metrics-format", inheritMetricsFormat, "metrics encoding: json or openmetrics")
	shardRange := fs.String("shard-range", "", "run only shards [A,B) of the campaign and write a mergeable partial (requires -partial)")
	partialPath := fs.String("partial", "", "write the completed shard range's partial to this file (with -shard-range)")
	merge := fs.Bool("merge", false, "merge partial files (the positional arguments) into the final result instead of running")
	if err := fs.Parse(args); err != nil {
		return err
	}
	switch *metricsFormat {
	case "json", "openmetrics":
	default:
		return fmt.Errorf("-metrics-format: unknown format %q (supported: json, openmetrics)", *metricsFormat)
	}

	if *merge {
		var clash []string
		fs.Visit(func(f *flag.Flag) {
			switch f.Name {
			case "homes", "workers", "seed", "campaign", "checkpoint", "shard-size", "reuse", "shard-range", "partial":
				clash = append(clash, "-"+f.Name)
			}
		})
		if len(clash) > 0 {
			return fmt.Errorf("fleet -merge reconstructs the campaign from the partial files themselves; drop %s", strings.Join(clash, ", "))
		}
		if fs.NArg() == 0 {
			return fmt.Errorf("fleet -merge needs the partial files to merge as arguments")
		}
		return mergeFleet(fs.Args(), *outPath, *metricsOut, *metricsFormat)
	}
	if fs.NArg() != 0 {
		return fmt.Errorf("fleet takes no positional arguments, got %q", fs.Args())
	}

	rangeFirst, rangeLast := 0, 0
	if *shardRange != "" {
		var err error
		if rangeFirst, rangeLast, err = parseShardRange(*shardRange); err != nil {
			return err
		}
		if *partialPath == "" {
			return fmt.Errorf("-shard-range needs -partial FILE for the range's mergeable output")
		}
		if *outPath != "" {
			return fmt.Errorf("-out does not apply to a shard range: a range worker emits a partial (-partial), and `fleet -merge` emits the result")
		}
		if *metricsOut != "" {
			return fmt.Errorf("-metrics does not apply to a shard range: the partial carries the exact metric state, and `fleet -merge` emits the merged snapshot")
		}
	} else if *partialPath != "" {
		return fmt.Errorf("-partial only applies with -shard-range")
	}

	spec := fleet.DefaultSpec()
	if *campaignPath != "" {
		data, err := os.ReadFile(*campaignPath)
		if err != nil {
			return fmt.Errorf("campaign spec: %w", err)
		}
		if spec, err = fleet.ParseSpec(data); err != nil {
			return err
		}
	}

	// The campaign folds shard metrics into acc as they land; the tracker
	// folds the same shard results into running progress. Both sit on the
	// wall-clock side: the serve plane reads them concurrently while the
	// collector writes, and neither can perturb the aggregate — results
	// stay byte-identical with -serve on or off.
	acc := obs.NewAccumulator()
	trackHomes := *homes
	if *shardRange != "" {
		trackHomes = rangeHomes(rangeFirst, rangeLast, *shardSize, *homes)
	}
	tracker := fleet.NewProgressTracker(time.Now(), trackHomes)
	c := fleet.Campaign{
		Spec:           spec,
		Homes:          *homes,
		Workers:        *workers,
		ShardSize:      *shardSize,
		Seed:           *seed,
		CheckpointPath: *checkpointPath,
		ReuseTestbeds:  *reuse,
		Accumulator:    acc,
		OnShard: func(s fleet.ShardResult, done, total int) {
			tracker.OnShard(s, done, total)
			fmt.Fprintln(os.Stderr, tracker.LineAt(time.Now()))
		},
		OnResume: func(p fleet.Partial, done, total int) {
			tracker.OnResume(p, done, total)
			fmt.Fprintln(os.Stderr, tracker.LineAt(time.Now()))
		},
	}

	if *serveAddr != "" {
		srv, err := serve.Start(*serveAddr, serve.Plane{
			Metrics:  acc.State,
			Progress: func() any { return tracker.ReportAt(time.Now()) },
			// Fleet homes run traceless, so /trace serves a valid empty
			// trace unless a future spec turns the recorder on.
			TraceSources: func() []timeline.Source {
				if t := acc.State().Trace; len(t) > 0 {
					return []timeline.Source{{Name: "fleet", Events: t}}
				}
				return nil
			},
		})
		if err != nil {
			return err
		}
		defer srv.Close()
		fmt.Fprintf(os.Stderr, "phantomlab: serving observability plane on http://%s\n", srv.Addr())
	}

	if *shardRange != "" {
		p, err := c.RunRange(rangeFirst, rangeLast)
		if err != nil {
			return err
		}
		return c.SavePartial(*partialPath, p)
	}

	res, err := c.Run()
	if err != nil {
		return err
	}
	if err := writeResult(*outPath, res); err != nil {
		return err
	}
	return writeMetrics(*metricsOut, *metricsFormat, "fleet", acc)
}

// mergeFleet folds completed -shard-range partials into the final campaign
// result. The campaign identity travels inside every partial file, so the
// merge needs no flags beyond where to write.
func mergeFleet(paths []string, outPath, metricsOut, metricsFormat string) error {
	c, parts, err := fleet.LoadPartials(paths)
	if err != nil {
		return err
	}
	acc := obs.NewAccumulator()
	c.Accumulator = acc
	res, err := c.MergePartials(parts)
	if err != nil {
		return err
	}
	if err := writeResult(outPath, res); err != nil {
		return err
	}
	return writeMetrics(metricsOut, metricsFormat, "fleet", acc)
}

// parseShardRange parses the -shard-range A:B flag value.
func parseShardRange(s string) (first, last int, err error) {
	a, b, ok := strings.Cut(s, ":")
	if ok {
		if first, err = strconv.Atoi(a); err == nil {
			last, err = strconv.Atoi(b)
		}
	}
	if !ok || err != nil {
		return 0, 0, fmt.Errorf("-shard-range: want FIRST:LAST shard indexes (half-open), got %q", s)
	}
	return first, last, nil
}

// rangeHomes counts the homes shards [first, last) cover, for progress
// totals. Bad ranges come out ≤ 0 here and are rejected by RunRange.
func rangeHomes(first, last, shardSize, homes int) int {
	if shardSize <= 0 {
		shardSize = fleet.DefaultShardSize
	}
	hi := last * shardSize
	if hi > homes {
		hi = homes
	}
	n := hi - first*shardSize
	if n < 0 {
		n = 0
	}
	return n
}

// writeResult writes the aggregated campaign result to path, or stdout.
func writeResult(path string, res fleet.Result) error {
	var w io.Writer = os.Stdout
	if path != "" {
		f, err := os.Create(path)
		if err != nil {
			return fmt.Errorf("fleet output: %w", err)
		}
		defer f.Close()
		w = f
	}
	return res.WriteJSON(w)
}

// traceStore collects the run's per-timeline event streams. The run loop
// appends; the serve plane's /trace handler snapshots concurrently, so
// access is mutex-guarded.
type traceStore struct {
	mu   sync.Mutex
	srcs []timeline.Source
}

func (t *traceStore) add(s timeline.Source) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.srcs = append(t.srcs, s)
}

func (t *traceStore) snapshot() []timeline.Source {
	t.mu.Lock()
	defer t.mu.Unlock()
	return append([]timeline.Source(nil), t.srcs...)
}

// writeMetrics dumps the run's accumulated metrics to path, in the
// requested encoding. A run that produced no snapshots has nothing
// meaningful to write — that is a usage error, not an empty file.
func writeMetrics(path, format, cmd string, acc *obs.Accumulator) error {
	if path == "" {
		return nil
	}
	if acc.Adds() == 0 {
		return fmt.Errorf("-metrics: command %q produces no metrics (supported: %s)", cmd, strings.Join(metricsCommands, ", "))
	}
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("metrics output: %w", err)
	}
	if format == "openmetrics" {
		err = obs.WriteOpenMetrics(f, acc.State())
	} else {
		enc := json.NewEncoder(f)
		enc.SetIndent("", "  ")
		err = enc.Encode(acc.State())
	}
	if err != nil {
		f.Close()
		return fmt.Errorf("metrics output: %w", err)
	}
	return f.Close()
}

// writeTrace reconstructs per-run timelines from the collected flight-
// recorder streams and writes them to path. A -trace run whose results
// carried no events means tracing never engaged — surface that instead of
// writing an empty file.
func writeTrace(path, format, cmd string, srcs []timeline.Source) error {
	if path == "" {
		return nil
	}
	if len(srcs) == 0 {
		return fmt.Errorf("-trace: command %q produced no flight-recorder events", cmd)
	}
	tls := timeline.BuildAll(srcs)
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("trace output: %w", err)
	}
	if format == "text" {
		err = timeline.WriteText(f, tls)
	} else {
		err = timeline.WriteChromeTrace(f, tls)
	}
	if err != nil {
		f.Close()
		return fmt.Errorf("trace output: %w", err)
	}
	return f.Close()
}

func runTable(labels []string, opts experiment.TableOptions, parallel int) []experiment.TableRow {
	if parallel > 0 {
		return experiment.RunTableParallel(labels, opts, parallel)
	}
	return experiment.RunTable(labels, opts)
}

func cloudLabels() []string {
	var out []string
	for _, p := range device.CloudProfiles() {
		out = append(out, p.Label)
	}
	return out
}

func localLabels() []string {
	var out []string
	for _, p := range device.LocalProfiles() {
		out = append(out, p.Label)
	}
	return out
}

// catalogLabels lists every catalog device in declaration order — the
// replay assessment probes the whole population, hub children included.
func catalogLabels() []string {
	var out []string
	for _, p := range device.Catalog() {
		out = append(out, p.Label)
	}
	return out
}
