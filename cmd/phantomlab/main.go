// Command phantomlab reproduces the paper's evaluation: the Table I/II
// timeout measurements, the Table III proof-of-concept attacks, the
// verification test, the three session-behaviour findings, and the
// countermeasure studies.
//
// Usage:
//
//	phantomlab [flags] <table1|table2|table3|verify|findings|defense|recon|ablation|all>
//
// Flags:
//
//	-seed N      deterministic seed (default 1)
//	-trials N    measurement trials per message class (default 3; paper: 20)
//	-recovery D  inter-trial recovery (default 30s; paper: 2m)
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/device"
	"repro/internal/experiment"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "phantomlab:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("phantomlab", flag.ContinueOnError)
	seed := fs.Int64("seed", 1, "deterministic seed")
	trials := fs.Int("trials", 3, "trials per message class (paper uses 20)")
	recovery := fs.Duration("recovery", 30*time.Second, "inter-trial recovery (paper uses 2m)")
	jsonOut := fs.Bool("json", false, "emit JSON instead of rendered tables (table1/table2/table3)")
	parallel := fs.Int("parallel", 0, "measure tables with N concurrent testbeds (0 = serial)")
	metricsOut := fs.String("metrics", "", "write merged table metrics snapshot to this JSON file (table1/table2)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		fs.Usage()
		return fmt.Errorf("expected one command: table1|table2|table3|verify|findings|defense|recon|ablation|all")
	}
	cmd := fs.Arg(0)

	opts := experiment.TableOptions{Seed: *seed, Trials: *trials, Recovery: *recovery}
	out := os.Stdout

	// Rows from every table command of this invocation, for -metrics: the
	// per-testbed snapshots (one per device, across all parallel workers)
	// merge into a single file.
	var metricRows []experiment.TableRow

	runOne := func(name string) error {
		switch name {
		case "table1":
			rows := runTable(cloudLabels(), opts, *parallel)
			metricRows = append(metricRows, rows...)
			if *jsonOut {
				return experiment.WriteRowsJSON(out, rows)
			}
			experiment.FormatRows(out, "Table I — cloud-connected devices (33)", rows)
		case "table2":
			t2 := opts
			t2.UnboundedDemo = 2 * time.Hour
			rows := runTable(localLabels(), t2, *parallel)
			metricRows = append(metricRows, rows...)
			if *jsonOut {
				return experiment.WriteRowsJSON(out, rows)
			}
			experiment.FormatRows(out, "Table II — HomeKit accessories on a local hub (17)", rows)
		case "table3":
			results := experiment.RunCases(experiment.Table3Cases(), *seed+500)
			if *jsonOut {
				return experiment.WriteCasesJSON(out, results)
			}
			experiment.FormatCaseResults(out, results)
		case "verify":
			labels := []string{"C1", "L2", "CM1", "K2", "M7", "A1"}
			results := experiment.RunVerification(labels, experiment.VerifyOptions{Seed: *seed + 600, Trials: *trials})
			experiment.FormatVerifyResults(out, results)
		case "findings":
			experiment.FormatFindings(out, experiment.RunFindings(*seed+700))
		case "defense":
			ack := experiment.RunAckTimeoutDefense("C2",
				[]time.Duration{20 * time.Second, 10 * time.Second, 5 * time.Second}, *seed+800)
			ts := experiment.RunTimestampDefense(*seed + 820)
			experiment.FormatDefenseResults(out, ack, ts)
		case "recon":
			labels := []string{"C1", "M1", "L2", "M2", "C2", "M3", "LK1", "P2", "CM1", "K2", "SD1", "P4"}
			results := experiment.RunReconCoverage(labels, []int{3, 6, 10, 100}, *seed+1200)
			experiment.FormatRecon(out, results)
		case "ablation":
			margins := experiment.RunMarginAblation("C1",
				[]time.Duration{time.Second, 2 * time.Second, 5 * time.Second, 10 * time.Second}, *trials, *seed+900)
			boundary := experiment.RunDetectionBoundary("C1",
				[]time.Duration{40 * time.Second, 45 * time.Second, 50 * time.Second, 60 * time.Second}, *seed+910)
			experiment.FormatAblation(out, margins, boundary)
		default:
			return fmt.Errorf("unknown command %q", name)
		}
		fmt.Fprintln(out)
		return nil
	}

	if cmd == "all" {
		for _, name := range []string{"table1", "table2", "table3", "verify", "findings", "defense", "recon", "ablation"} {
			if err := runOne(name); err != nil {
				return err
			}
		}
		return writeMetrics(*metricsOut, metricRows)
	}
	if err := runOne(cmd); err != nil {
		return err
	}
	return writeMetrics(*metricsOut, metricRows)
}

// writeMetrics dumps the merged metrics snapshot of all measured rows to
// path. A run that produced no table rows writes an empty snapshot, which
// keeps the output shape stable for tooling.
func writeMetrics(path string, rows []experiment.TableRow) error {
	if path == "" {
		return nil
	}
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("metrics output: %w", err)
	}
	if err := experiment.WriteMetricsJSON(f, rows); err != nil {
		f.Close()
		return fmt.Errorf("metrics output: %w", err)
	}
	return f.Close()
}

func runTable(labels []string, opts experiment.TableOptions, parallel int) []experiment.TableRow {
	if parallel > 0 {
		return experiment.RunTableParallel(labels, opts, parallel)
	}
	return experiment.RunTable(labels, opts)
}

func cloudLabels() []string {
	var out []string
	for _, p := range device.CloudProfiles() {
		out = append(out, p.Label)
	}
	return out
}

func localLabels() []string {
	var out []string
	for _, p := range device.LocalProfiles() {
		out = append(out, p.Label)
	}
	return out
}
