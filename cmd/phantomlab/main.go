// Command phantomlab reproduces the paper's evaluation: the Table I/II
// timeout measurements, the Table III proof-of-concept attacks, the
// verification test, the three session-behaviour findings, the
// countermeasure studies, the record-and-replay vulnerability assessment,
// and fleet-scale attack campaigns over synthetic home populations.
//
// Usage:
//
//	phantomlab [flags] <table1|table2|table3|verify|findings|defense|recon|ablation|replay|all>
//	phantomlab fleet [-homes N] [-workers W] [-seed S] [-campaign spec.json]
//	                 [-checkpoint state.json] [-out results.json]
//
// Flags:
//
//	-seed N            deterministic seed (default 1)
//	-trials N          measurement trials per message class (default 3; paper: 20)
//	-recovery D        inter-trial recovery (default 30s; paper: 2m)
//	-metrics F         write the run's merged metrics snapshot to F
//	-metrics-format X  metrics encoding: json (default) or openmetrics
//	-trace F           write the run's attack flight-recorder timeline to F
//	-trace-format X    trace encoding: chrome (default, Perfetto-loadable) or text
//	-cpuprofile F      write a CPU profile of the run to F (go tool pprof)
//	-memprofile F      write a heap profile taken at exit to F
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/pprof"
	"sort"
	"strings"
	"time"

	"repro/internal/device"
	"repro/internal/experiment"
	"repro/internal/fleet"
	"repro/internal/obs"
	"repro/internal/obs/timeline"
)

// metricsCommands lists every command whose run produces observability
// snapshots, i.e. the commands -metrics accepts. traceCommands is the
// subset whose per-run snapshots carry flight-recorder events, i.e. the
// commands -trace accepts.
var (
	metricsCommands = []string{"table1", "table2", "table3", "verify", "findings", "defense", "replay", "all"}
	traceCommands   = []string{"table1", "table2", "table3", "verify", "replay", "all"}
)

// cliTraceCap sizes the flight-recorder ring for -trace runs: large enough
// that a whole table row survives without eviction, small enough to stay
// cheap.
const cliTraceCap = 65536

// writeHeapProfile records an end-of-run allocation profile. A GC first
// makes the live-heap numbers exact rather than whatever the last cycle
// left behind.
func writeHeapProfile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	runtime.GC()
	return pprof.WriteHeapProfile(f)
}

func supports(cmds []string, cmd string) bool {
	for _, c := range cmds {
		if c == cmd {
			return true
		}
	}
	return false
}

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "phantomlab:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("phantomlab", flag.ContinueOnError)
	seed := fs.Int64("seed", 1, "deterministic seed")
	trials := fs.Int("trials", 3, "trials per message class (paper uses 20)")
	recovery := fs.Duration("recovery", 30*time.Second, "inter-trial recovery (paper uses 2m)")
	jsonOut := fs.Bool("json", false, "emit JSON instead of rendered tables (table1/table2/table3)")
	parallel := fs.Int("parallel", 0, "measure tables with N concurrent testbeds (0 = serial)")
	metricsOut := fs.String("metrics", "", "write merged metrics snapshot to this file ("+strings.Join(metricsCommands, "/")+")")
	metricsFormat := fs.String("metrics-format", "json", "metrics encoding: json or openmetrics")
	traceOut := fs.String("trace", "", "write attack flight-recorder timeline to this file ("+strings.Join(traceCommands, "/")+")")
	traceFormat := fs.String("trace-format", "chrome", "trace encoding: chrome (Perfetto-loadable) or text")
	cpuProfile := fs.String("cpuprofile", "", "write a CPU profile of the run to this file")
	memProfile := fs.String("memprofile", "", "write a heap profile taken at exit to this file")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			return fmt.Errorf("-cpuprofile: %w", err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			return fmt.Errorf("-cpuprofile: %w", err)
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}
	if *memProfile != "" {
		defer func() {
			if err := writeHeapProfile(*memProfile); err != nil {
				fmt.Fprintln(os.Stderr, "phantomlab: -memprofile:", err)
			}
		}()
	}
	switch *metricsFormat {
	case "json", "openmetrics":
	default:
		return fmt.Errorf("-metrics-format: unknown format %q (supported: json, openmetrics)", *metricsFormat)
	}
	switch *traceFormat {
	case "chrome", "text":
	default:
		return fmt.Errorf("-trace-format: unknown format %q (supported: chrome, text)", *traceFormat)
	}
	// Flag parsing stops at the first positional, so subcommand flags
	// arrive in fs.Args()[1:].
	if fs.NArg() >= 1 && fs.Arg(0) == "fleet" {
		return runFleet(fs.Args()[1:])
	}
	if fs.NArg() != 1 {
		fs.Usage()
		return fmt.Errorf("expected one command: table1|table2|table3|verify|findings|defense|recon|ablation|replay|all|fleet")
	}
	cmd := fs.Arg(0)
	if *traceOut != "" && !supports(traceCommands, cmd) {
		return fmt.Errorf("-trace: command %q records no timeline (supported: %s)", cmd, strings.Join(traceCommands, ", "))
	}

	opts := experiment.TableOptions{Seed: *seed, Trials: *trials, Recovery: *recovery}
	if *traceOut != "" {
		opts.TraceCap = cliTraceCap
	}
	out := os.Stdout

	// Metrics snapshots from every command of this invocation, for
	// -metrics: per-testbed snapshots merge into a single file. Trace
	// sources are the per-run event streams behind -trace, one named
	// timeline per table row / case / verified device.
	var metricSnaps []obs.Snapshot
	var traceSrcs []timeline.Source

	rowSources := func(rows []experiment.TableRow) {
		for _, r := range rows {
			if len(r.Metrics.Trace) > 0 {
				traceSrcs = append(traceSrcs, timeline.Source{Name: r.Label, Events: r.Metrics.Trace})
			}
		}
	}

	runOne := func(name string) error {
		switch name {
		case "table1":
			rows := runTable(cloudLabels(), opts, *parallel)
			metricSnaps = append(metricSnaps, experiment.MergedMetrics(rows))
			rowSources(rows)
			if *jsonOut {
				return experiment.WriteRowsJSON(out, rows)
			}
			experiment.FormatRows(out, "Table I — cloud-connected devices (33)", rows)
		case "table2":
			t2 := opts
			t2.UnboundedDemo = 2 * time.Hour
			rows := runTable(localLabels(), t2, *parallel)
			metricSnaps = append(metricSnaps, experiment.MergedMetrics(rows))
			rowSources(rows)
			if *jsonOut {
				return experiment.WriteRowsJSON(out, rows)
			}
			experiment.FormatRows(out, "Table II — HomeKit accessories on a local hub (17)", rows)
		case "table3":
			cases := experiment.Table3Cases()
			if *traceOut != "" {
				for i := range cases {
					cases[i].TraceCap = cliTraceCap
				}
			}
			results := experiment.RunCases(cases, *seed+500)
			for _, r := range results {
				metricSnaps = append(metricSnaps, r.Metrics)
				if len(r.Metrics.Trace) > 0 {
					traceSrcs = append(traceSrcs, timeline.Source{
						Name:   fmt.Sprintf("case-%d", r.Case.ID),
						Events: r.Metrics.Trace,
					})
				}
			}
			if *jsonOut {
				return experiment.WriteCasesJSON(out, results)
			}
			experiment.FormatCaseResults(out, results)
		case "verify":
			labels := []string{"C1", "L2", "CM1", "K2", "M7", "A1"}
			results := experiment.RunVerification(labels, experiment.VerifyOptions{
				Seed: *seed + 600, Trials: *trials, TraceCap: opts.TraceCap,
			})
			for _, r := range results {
				metricSnaps = append(metricSnaps, r.Metrics)
				if len(r.Metrics.Trace) > 0 {
					traceSrcs = append(traceSrcs, timeline.Source{Name: r.Label, Events: r.Metrics.Trace})
				}
			}
			experiment.FormatVerifyResults(out, results)
		case "findings":
			results := experiment.RunFindings(*seed + 700)
			for _, r := range results {
				metricSnaps = append(metricSnaps, r.Metrics)
			}
			experiment.FormatFindings(out, results)
		case "defense":
			ack := experiment.RunAckTimeoutDefense("C2",
				[]time.Duration{20 * time.Second, 10 * time.Second, 5 * time.Second}, *seed+800)
			ts := experiment.RunTimestampDefense(*seed + 820)
			for _, r := range ack {
				metricSnaps = append(metricSnaps, r.Metrics)
			}
			metricSnaps = append(metricSnaps, ts.Metrics)
			experiment.FormatDefenseResults(out, ack, ts)
		case "recon":
			labels := []string{"C1", "M1", "L2", "M2", "C2", "M3", "LK1", "P2", "CM1", "K2", "SD1", "P4"}
			results := experiment.RunReconCoverage(labels, []int{3, 6, 10, 100}, *seed+1200)
			experiment.FormatRecon(out, results)
		case "replay":
			results := experiment.RunReplayAssessment(catalogLabels(), experiment.ReplayOptions{
				Seed: *seed + 1300, TraceCap: opts.TraceCap,
			})
			for _, r := range results {
				metricSnaps = append(metricSnaps, r.Metrics)
				if len(r.Metrics.Trace) > 0 {
					traceSrcs = append(traceSrcs, timeline.Source{Name: "replay-" + r.Label, Events: r.Metrics.Trace})
				}
			}
			experiment.FormatReplayTable(out, results)
		case "ablation":
			margins := experiment.RunMarginAblation("C1",
				[]time.Duration{time.Second, 2 * time.Second, 5 * time.Second, 10 * time.Second}, *trials, *seed+900)
			boundary := experiment.RunDetectionBoundary("C1",
				[]time.Duration{40 * time.Second, 45 * time.Second, 50 * time.Second, 60 * time.Second}, *seed+910)
			experiment.FormatAblation(out, margins, boundary)
		default:
			return fmt.Errorf("unknown command %q", name)
		}
		fmt.Fprintln(out)
		return nil
	}

	if cmd == "all" {
		for _, name := range []string{"table1", "table2", "table3", "verify", "findings", "defense", "recon", "ablation", "replay"} {
			if err := runOne(name); err != nil {
				return err
			}
		}
	} else if err := runOne(cmd); err != nil {
		return err
	}
	if err := writeMetrics(*metricsOut, *metricsFormat, cmd, metricSnaps); err != nil {
		return err
	}
	return writeTrace(*traceOut, *traceFormat, cmd, traceSrcs)
}

// runFleet executes the fleet subcommand: a sharded attack campaign over a
// synthetic population of homes.
func runFleet(args []string) error {
	fs := flag.NewFlagSet("phantomlab fleet", flag.ContinueOnError)
	homes := fs.Int("homes", 100, "population size")
	workers := fs.Int("workers", 1, "worker-pool size (wall-clock only; results are identical for any value)")
	seed := fs.Int64("seed", 1, "population master seed")
	campaignPath := fs.String("campaign", "", "campaign spec JSON file (default: built-in edelay-sensors campaign)")
	checkpointPath := fs.String("checkpoint", "", "persist completed shards to this JSON file and resume from it")
	outPath := fs.String("out", "", "write aggregated results JSON to this file (default stdout)")
	shardSize := fs.Int("shard-size", fleet.DefaultShardSize, "homes per checkpoint shard")
	reuse := fs.Bool("reuse", false, "recycle one testbed arena per worker (allocation only; results are identical either way)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 0 {
		return fmt.Errorf("fleet takes no positional arguments, got %q", fs.Args())
	}

	spec := fleet.DefaultSpec()
	if *campaignPath != "" {
		data, err := os.ReadFile(*campaignPath)
		if err != nil {
			return fmt.Errorf("campaign spec: %w", err)
		}
		if spec, err = fleet.ParseSpec(data); err != nil {
			return err
		}
	}

	progress := &fleetProgress{w: os.Stderr, start: time.Now(), homesTotal: *homes}
	c := fleet.Campaign{
		Spec:           spec,
		Homes:          *homes,
		Workers:        *workers,
		ShardSize:      *shardSize,
		Seed:           *seed,
		CheckpointPath: *checkpointPath,
		ReuseTestbeds:  *reuse,
		OnShard:        progress.onShard,
	}
	res, err := c.Run()
	if err != nil {
		return err
	}

	var w io.Writer = os.Stdout
	if *outPath != "" {
		f, err := os.Create(*outPath)
		if err != nil {
			return fmt.Errorf("fleet output: %w", err)
		}
		defer f.Close()
		w = f
	}
	return res.WriteJSON(w)
}

// fleetProgress renders live campaign progress on stderr: homes completed,
// throughput, per-model running success rate, and an ETA. It runs on the
// campaign's collector goroutine and only writes to w — it never touches
// the aggregated results, which stay byte-identical with or without it.
type fleetProgress struct {
	w          io.Writer
	start      time.Time
	homesTotal int

	homesDone int
	models    []string // insertion-ordered model names
	trials    map[string]int
	successes map[string]int
}

func (p *fleetProgress) onShard(s fleet.ShardResult, done, total int) {
	if p.trials == nil {
		p.trials = make(map[string]int)
		p.successes = make(map[string]int)
	}
	p.homesDone += s.Homes
	for _, t := range s.Tallies {
		if _, ok := p.trials[t.Model]; !ok {
			p.models = append(p.models, t.Model)
		}
		p.trials[t.Model] += t.Trials
		p.successes[t.Model] += t.Successes
	}

	line := fmt.Sprintf("fleet: shard %d/%d  homes %d/%d", done, total, p.homesDone, p.homesTotal)
	if elapsed := time.Since(p.start).Seconds(); elapsed > 0 {
		rate := float64(p.homesDone) / elapsed
		line += fmt.Sprintf("  %.1f homes/s", rate)
		if remaining := p.homesTotal - p.homesDone; remaining > 0 && rate > 0 {
			eta := time.Duration(float64(remaining)/rate*float64(time.Second)).Round(time.Second)
			line += fmt.Sprintf("  ETA %v", eta)
		}
	}
	sort.Strings(p.models)
	for _, m := range p.models {
		if n := p.trials[m]; n > 0 {
			line += fmt.Sprintf("  %s %.0f%%", m, 100*float64(p.successes[m])/float64(n))
		}
	}
	fmt.Fprintln(p.w, line)
}

// writeMetrics dumps the merged metrics snapshot of the run to path, in the
// requested encoding. A run that produced no snapshots has nothing
// meaningful to write — that is a usage error, not an empty file.
func writeMetrics(path, format, cmd string, snaps []obs.Snapshot) error {
	if path == "" {
		return nil
	}
	if len(snaps) == 0 {
		return fmt.Errorf("-metrics: command %q produces no metrics (supported: %s)", cmd, strings.Join(metricsCommands, ", "))
	}
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("metrics output: %w", err)
	}
	if format == "openmetrics" {
		err = obs.WriteOpenMetrics(f, obs.Merge(snaps...))
	} else {
		err = experiment.WriteSnapshotsJSON(f, snaps)
	}
	if err != nil {
		f.Close()
		return fmt.Errorf("metrics output: %w", err)
	}
	return f.Close()
}

// writeTrace reconstructs per-run timelines from the collected flight-
// recorder streams and writes them to path. A -trace run whose results
// carried no events means tracing never engaged — surface that instead of
// writing an empty file.
func writeTrace(path, format, cmd string, srcs []timeline.Source) error {
	if path == "" {
		return nil
	}
	if len(srcs) == 0 {
		return fmt.Errorf("-trace: command %q produced no flight-recorder events", cmd)
	}
	tls := timeline.BuildAll(srcs)
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("trace output: %w", err)
	}
	if format == "text" {
		err = timeline.WriteText(f, tls)
	} else {
		err = timeline.WriteChromeTrace(f, tls)
	}
	if err != nil {
		f.Close()
		return fmt.Errorf("trace output: %w", err)
	}
	return f.Close()
}

func runTable(labels []string, opts experiment.TableOptions, parallel int) []experiment.TableRow {
	if parallel > 0 {
		return experiment.RunTableParallel(labels, opts, parallel)
	}
	return experiment.RunTable(labels, opts)
}

func cloudLabels() []string {
	var out []string
	for _, p := range device.CloudProfiles() {
		out = append(out, p.Label)
	}
	return out
}

func localLabels() []string {
	var out []string
	for _, p := range device.LocalProfiles() {
		out = append(out, p.Label)
	}
	return out
}

// catalogLabels lists every catalog device in declaration order — the
// replay assessment probes the whole population, hub children included.
func catalogLabels() []string {
	var out []string
	for _, p := range device.Catalog() {
		out = append(out, p.Label)
	}
	return out
}
