package main

import "testing"

func TestRunRejectsBadInput(t *testing.T) {
	if err := run([]string{}); err == nil {
		t.Fatal("no case should fail")
	}
	if err := run([]string{"0"}); err == nil {
		t.Fatal("case 0 should fail")
	}
	if err := run([]string{"12"}); err == nil {
		t.Fatal("case 12 should fail")
	}
	if err := run([]string{"nope"}); err == nil {
		t.Fatal("non-numeric case should fail")
	}
}

func TestRunList(t *testing.T) {
	if err := run([]string{"-list"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunCaseTen(t *testing.T) {
	if err := run([]string{"10"}); err != nil {
		t.Fatal(err)
	}
}
