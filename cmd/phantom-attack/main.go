// Command phantom-attack runs one Table III proof-of-concept case
// end-to-end, printing the outcome without and with the attack.
//
// Usage:
//
//	phantom-attack [-seed N] [-trace] <case-number 1..11>
//	phantom-attack -list
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"

	"repro/internal/experiment"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "phantom-attack:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("phantom-attack", flag.ContinueOnError)
	seed := fs.Int64("seed", 1, "deterministic seed")
	list := fs.Bool("list", false, "list the PoC cases and exit")
	trace := fs.Bool("trace", false, "stream every TLS record crossing the hijacked bridges")
	if err := fs.Parse(args); err != nil {
		return err
	}
	cases := experiment.Table3Cases()
	if *list {
		for _, c := range cases {
			cond := c.Condition
			if cond == "" {
				cond = "-"
			}
			fmt.Printf("Case %-3d %-20s trigger=%q condition=%q action=%q\n      consequence: %s\n",
				c.ID, c.Type, c.Trigger, cond, c.Action, c.Consequence)
		}
		return nil
	}
	if fs.NArg() != 1 {
		fs.Usage()
		return fmt.Errorf("expected a case number 1..11 (try -list)")
	}
	n, err := strconv.Atoi(fs.Arg(0))
	if err != nil || n < 1 || n > len(cases) {
		return fmt.Errorf("case number must be 1..%d", len(cases))
	}
	c := cases[n-1]
	if *trace {
		c.Trace = os.Stdout
	}

	fmt.Printf("Case %d (%s)\n", c.ID, c.Type)
	fmt.Printf("  rule:        when %q", c.Trigger)
	if c.Condition != "" {
		fmt.Printf(", if %q", c.Condition)
	}
	fmt.Printf(", then %q\n", c.Action)
	fmt.Printf("  devices:     %v (hijacked: %v)\n", c.Devices, c.Hijacks)
	fmt.Printf("  consequence: %s\n\n", c.Consequence)

	results := experiment.RunCases([]experiment.Case{c}, *seed+int64(n)*997)
	r := results[0]
	if r.Err != nil {
		return r.Err
	}
	fmt.Printf("without attack: %s\n", r.BaselineDetail)
	fmt.Printf("with attack:    %s (server-side alarms: %d)\n", r.AttackDetail, r.AttackAlarms)
	if r.Succeeded() {
		fmt.Println("\nresult: attack succeeded, silently")
	} else {
		fmt.Println("\nresult: attack FAILED")
	}
	return nil
}
