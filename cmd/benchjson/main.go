// Command benchjson is the perf-regression harness CLI.
//
// Record mode (default): parse `go test -bench -benchmem` text from stdin
// (or -in) and write the canonical byte-stable JSON document to -out:
//
//	go test -run '^$' -bench . -benchmem ./... | benchjson -out BENCH_hotpath.json
//
// Compare mode: diff a freshly recorded document against a committed
// baseline and exit nonzero on regression:
//
//	benchjson -compare BENCH_hotpath.json -current fresh.json -ci
//
// Tolerances: -tol-ns / -tol-allocs are fractional increases (0.40 =
// +40%); a negative -tol-ns disables timing comparison. -ci selects the
// foreign-hardware preset (timing disabled, allocations within 25%),
// because allocation counts are the only numbers comparable across
// machines.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/bench"
)

func main() {
	if err := run(os.Args[1:], os.Stdin, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

func run(args []string, stdin io.Reader, stderr io.Writer) error {
	fs := flag.NewFlagSet("benchjson", flag.ContinueOnError)
	in := fs.String("in", "", "bench text input file (default stdin)")
	out := fs.String("out", "", "JSON output file (default stdout)")
	compare := fs.String("compare", "", "baseline JSON document; enables compare mode")
	current := fs.String("current", "", "current JSON document to diff against -compare")
	ci := fs.Bool("ci", false, "use the foreign-hardware tolerance preset (allocs only)")
	tolNs := fs.Float64("tol-ns", bench.DefaultTolerance.NsFrac, "allowed fractional ns/op increase (<0 disables)")
	tolAllocs := fs.Float64("tol-allocs", bench.DefaultTolerance.AllocFrac, "allowed fractional allocs/op increase (<0 disables)")
	allocSlack := fs.Float64("alloc-slack", bench.DefaultTolerance.AllocSlack, "absolute allocs/op noise floor")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 0 {
		return fmt.Errorf("unexpected arguments %q", fs.Args())
	}
	if *compare != "" {
		return runCompare(*compare, *current, toleranceFrom(*ci, *tolNs, *tolAllocs, *allocSlack), stderr)
	}
	return runRecord(*in, *out, stdin, stderr)
}

func toleranceFrom(ci bool, tolNs, tolAllocs, allocSlack float64) bench.Tolerance {
	if ci {
		return bench.CITolerance
	}
	return bench.Tolerance{NsFrac: tolNs, AllocFrac: tolAllocs, AllocSlack: allocSlack}
}

func runRecord(inPath, outPath string, stdin io.Reader, stderr io.Writer) error {
	r := stdin
	if inPath != "" {
		f, err := os.Open(inPath)
		if err != nil {
			return err
		}
		defer f.Close()
		r = f
	}
	// Echo the bench text through so the harness stays observable when run
	// in a pipeline (`go test` output would otherwise vanish).
	results, err := bench.Parse(io.TeeReader(r, stderr))
	if err != nil {
		return err
	}
	if len(results) == 0 {
		return fmt.Errorf("no benchmark results in input (did the bench run fail?)")
	}
	suite := bench.NewSuite(results)
	w := io.Writer(os.Stdout)
	if outPath != "" {
		f, err := os.Create(outPath)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	if err := suite.WriteJSON(w); err != nil {
		return err
	}
	fmt.Fprintf(stderr, "benchjson: recorded %d benchmarks\n", len(suite.Benchmarks))
	bench.Render(stderr, suite)
	return nil
}

func runCompare(basePath, curPath string, tol bench.Tolerance, stderr io.Writer) error {
	if curPath == "" {
		return fmt.Errorf("-compare requires -current")
	}
	baseline, err := readSuiteFile(basePath)
	if err != nil {
		return err
	}
	cur, err := readSuiteFile(curPath)
	if err != nil {
		return err
	}
	regs := bench.Compare(baseline, cur, tol)
	if len(regs) == 0 {
		fmt.Fprintf(stderr, "benchjson: %d benchmarks within tolerance of %s\n", len(baseline.Benchmarks), basePath)
		return nil
	}
	for _, r := range regs {
		fmt.Fprintln(stderr, "REGRESSION:", r)
	}
	return fmt.Errorf("%d benchmark regression(s) against %s", len(regs), basePath)
}

func readSuiteFile(path string) (bench.Suite, error) {
	f, err := os.Open(path)
	if err != nil {
		return bench.Suite{}, err
	}
	defer f.Close()
	s, err := bench.ReadSuite(f)
	if err != nil {
		return bench.Suite{}, fmt.Errorf("%s: %w", path, err)
	}
	return s, nil
}
