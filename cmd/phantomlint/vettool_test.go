// Protocol-level test for the vet -vettool mode: builds the real binary
// and drives it the way cmd/go does — version handshake, flag listing,
// then .cfg units with export data and fact files — against a throwaway
// module. The point is the wire contract: facts written by a dependency
// unit must change a later unit's verdict.
package main

import (
	"bytes"
	"encoding/json"
	"errors"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// buildTool compiles phantomlint into dir and returns the binary path.
func buildTool(t *testing.T, dir string) string {
	t.Helper()
	bin := filepath.Join(dir, "phantomlint")
	cmd := exec.Command("go", "build", "-o", bin, ".")
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("building phantomlint: %v\n%s", err, out)
	}
	return bin
}

func TestVettoolVersionHandshake(t *testing.T) {
	bin := buildTool(t, t.TempDir())
	out, err := exec.Command(bin, "-V=full").Output()
	if err != nil {
		t.Fatalf("-V=full: %v", err)
	}
	line := strings.TrimSpace(string(out))
	if strings.ContainsAny(line, "\n") {
		t.Errorf("-V=full must print a single line, got %q", line)
	}
	// The version string keys the build cache: it must name the tool and
	// pin both the suite and the fact format.
	for _, want := range []string{"phantomlint version", "detflow", "goroutineguard", "factfmt="} {
		if !strings.Contains(line, want) {
			t.Errorf("-V=full output %q missing %q", line, want)
		}
	}
}

func TestVettoolFlagsHandshake(t *testing.T) {
	bin := buildTool(t, t.TempDir())
	out, err := exec.Command(bin, "-flags").Output()
	if err != nil {
		t.Fatalf("-flags: %v", err)
	}
	var defs []struct {
		Name string
		Bool bool
	}
	if err := json.Unmarshal(out, &defs); err != nil {
		t.Fatalf("-flags output is not a JSON flag list: %v\n%s", err, out)
	}
	names := map[string]bool{}
	for _, d := range defs {
		names[d.Name] = true
	}
	if !names["V"] || !names["json"] {
		t.Errorf("-flags must describe V and json, got %v", names)
	}
}

// writeTestModule lays out a module named repro (the analyzers' scoping
// is path-based, so the fixture must live under the real module path)
// with a wall-clock helper in the exempt bench subtree and a simulation
// package laundering the clock through it.
func writeTestModule(t *testing.T, dir string) {
	t.Helper()
	files := map[string]string{
		"go.mod": "module repro\n\ngo 1.22\n",
		"internal/bench/vthelp/vthelp.go": `// Package vthelp wraps the wall clock; bench code may.
package vthelp

import "time"

// Stamp reads the wall clock.
func Stamp() int64 { return time.Now().UnixNano() }
`,
		"internal/vtprobe/probe.go": `// Package vtprobe is simulation-scoped and calls the launderer.
package vtprobe

import "repro/internal/bench/vthelp"

// Use smuggles wall-clock time into sim code.
func Use() int64 { return vthelp.Stamp() }
`,
	}
	for name, src := range files {
		path := filepath.Join(dir, name)
		if err := os.MkdirAll(filepath.Dir(path), 0o777); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(src), 0o666); err != nil {
			t.Fatal(err)
		}
	}
}

// exportData compiles the module and returns ImportPath → export-data
// file for every dependency, the way cmd/go hands them to a vettool.
func exportData(t *testing.T, modDir string) map[string]string {
	t.Helper()
	cmd := exec.Command("go", "list", "-deps", "-export", "-json=ImportPath,Export", "./...")
	cmd.Dir = modDir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		t.Fatalf("go list -export: %v\n%s", err, stderr.Bytes())
	}
	exports := map[string]string{}
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p struct {
			ImportPath string
			Export     string
		}
		if err := dec.Decode(&p); err != nil {
			if errors.Is(err, io.EOF) {
				break
			}
			t.Fatalf("decoding go list output: %v", err)
		}
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
	}
	return exports
}

// runUnit writes cfg as a .cfg file and invokes the tool on it, returning
// combined output and exit code.
func runUnit(t *testing.T, bin, dir, name string, cfg vetConfig) (string, int) {
	t.Helper()
	data, err := json.Marshal(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfgPath := filepath.Join(dir, name+".cfg")
	if err := os.WriteFile(cfgPath, data, 0o666); err != nil {
		t.Fatal(err)
	}
	cmd := exec.Command(bin, cfgPath)
	out, err := cmd.CombinedOutput()
	code := 0
	if err != nil {
		var exit *exec.ExitError
		if !errors.As(err, &exit) {
			t.Fatalf("running unit %s: %v\n%s", name, err, out)
		}
		code = exit.ExitCode()
	}
	return string(out), code
}

func TestVettoolFactRoundTrip(t *testing.T) {
	work := t.TempDir()
	bin := buildTool(t, work)
	modDir := filepath.Join(work, "mod")
	writeTestModule(t, modDir)
	exports := exportData(t, modDir)
	if exports["time"] == "" || exports["repro/internal/bench/vthelp"] == "" {
		t.Fatalf("missing export data: %v", exports)
	}

	// Unit 1: the bench helper as a dependency-only unit. VetxOnly means
	// no diagnostics, but being module-local it must still compute and
	// write real facts — the taint summary for Stamp.
	helpVetx := filepath.Join(work, "vthelp.vetx")
	out, code := runUnit(t, bin, work, "vthelp", vetConfig{
		ID:         "repro/internal/bench/vthelp",
		Compiler:   "gc",
		ImportPath: "repro/internal/bench/vthelp",
		GoFiles:    []string{filepath.Join(modDir, "internal/bench/vthelp/vthelp.go")},
		ImportMap:  map[string]string{"time": "time"},
		PackageFile: map[string]string{
			"time": exports["time"],
		},
		VetxOnly:   true,
		VetxOutput: helpVetx,
	})
	if code != 0 {
		t.Fatalf("vthelp unit exited %d:\n%s", code, out)
	}
	factData, err := os.ReadFile(helpVetx)
	if err != nil {
		t.Fatalf("vthelp unit wrote no facts file: %v", err)
	}
	if !strings.Contains(string(factData), "Stamp") || !strings.Contains(string(factData), "wallclock") {
		t.Errorf("facts file should carry Stamp's wallclock summary, got: %s", factData)
	}

	// Unit 2: the simulation package, seeded with the dependency's fact
	// file. detflow must flag the laundering call — knowledge it can only
	// have via the .vetx round-trip, since vthelp's source is not in this
	// unit.
	probeCfg := vetConfig{
		ID:         "repro/internal/vtprobe",
		Compiler:   "gc",
		ImportPath: "repro/internal/vtprobe",
		GoFiles:    []string{filepath.Join(modDir, "internal/vtprobe/probe.go")},
		ImportMap:  map[string]string{"repro/internal/bench/vthelp": "repro/internal/bench/vthelp"},
		PackageFile: map[string]string{
			"repro/internal/bench/vthelp": exports["repro/internal/bench/vthelp"],
		},
		PackageVetx: map[string]string{"repro/internal/bench/vthelp": helpVetx},
		VetxOutput:  filepath.Join(work, "vtprobe.vetx"),
	}
	out, code = runUnit(t, bin, work, "vtprobe", probeCfg)
	if code != 2 {
		t.Fatalf("vtprobe unit should exit 2 on findings, got %d:\n%s", code, out)
	}
	if !strings.Contains(out, "detflow") || !strings.Contains(out, "vthelp.Stamp") || !strings.Contains(out, "time.Now") {
		t.Errorf("expected a detflow laundering diagnostic naming vthelp.Stamp → time.Now, got:\n%s", out)
	}
	// The unit re-encodes inherited facts, so its own vetx keeps Stamp's
	// summary flowing to indirect importers.
	probeFacts, err := os.ReadFile(probeCfg.VetxOutput)
	if err != nil {
		t.Fatalf("vtprobe unit wrote no facts file despite diagnostics: %v", err)
	}
	if !strings.Contains(string(probeFacts), "Stamp") {
		t.Errorf("inherited facts dropped from vtprobe.vetx: %s", probeFacts)
	}

	// Control: the same unit without PackageVetx seeding must pass clean —
	// proving the verdict above came from the fact file, not source access.
	probeCfg.PackageVetx = nil
	probeCfg.VetxOutput = filepath.Join(work, "vtprobe-unseeded.vetx")
	out, code = runUnit(t, bin, work, "vtprobe-unseeded", probeCfg)
	if code != 0 {
		t.Errorf("unseeded vtprobe unit should find nothing, exited %d:\n%s", code, out)
	}
}
