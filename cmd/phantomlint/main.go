// Command phantomlint runs the repository's custom determinism and
// zero-tax-tracing analyzers (internal/analysis/...) over Go packages.
//
// Standalone (the mode verify.sh, make lint and CI use):
//
//	go run ./cmd/phantomlint ./...            # analyze everything
//	go run ./cmd/phantomlint -run maporder ./internal/sniff/
//	go run ./cmd/phantomlint -list            # describe the suite
//
// Exit status is 0 when no findings survive //lint:allow suppression,
// 1 when findings are reported, 2 on usage or load errors.
//
// The binary also speaks the `go vet -vettool` unit-checker protocol
// (see vettool.go):
//
//	go build -o /tmp/phantomlint ./cmd/phantomlint
//	go vet -vettool=/tmp/phantomlint ./...
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/analysis"
	"repro/internal/analysis/load"
	"repro/internal/analysis/maporder"
	"repro/internal/analysis/resetalloc"
	"repro/internal/analysis/simdeterminism"
	"repro/internal/analysis/timerguard"
	"repro/internal/analysis/traceguard"
	"repro/internal/analysis/wallclockboundary"
)

// suite is the phantomlint analyzer set, in reporting order.
var suite = []*analysis.Analyzer{
	maporder.Analyzer,
	resetalloc.Analyzer,
	simdeterminism.Analyzer,
	timerguard.Analyzer,
	traceguard.Analyzer,
	wallclockboundary.Analyzer,
}

func main() {
	// The vet driver invokes the tool as `phantomlint -V=full` and then
	// `phantomlint <file>.cfg`; detect that protocol before flag parsing
	// so the standalone flags don't collide with vet's.
	if vettoolMain(suite) {
		return
	}

	listFlag := flag.Bool("list", false, "list the analyzers and exit")
	runFlag := flag.String("run", "", "comma-separated analyzer names to run (default: all)")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: phantomlint [-list] [-run name,name] [packages]\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	if *listFlag {
		for _, a := range suite {
			fmt.Printf("%s: %s\n", a.Name, a.Doc)
		}
		return
	}

	analyzers, err := selectAnalyzers(*runFlag)
	if err != nil {
		fmt.Fprintln(os.Stderr, "phantomlint:", err)
		os.Exit(2)
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	wd, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(os.Stderr, "phantomlint:", err)
		os.Exit(2)
	}
	pkgs, err := load.Packages(wd, patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "phantomlint:", err)
		os.Exit(2)
	}
	findings, err := analysis.Run(pkgs, analyzers)
	if err != nil {
		fmt.Fprintln(os.Stderr, "phantomlint:", err)
		os.Exit(2)
	}
	for _, f := range findings {
		fmt.Printf("%s: %s (%s)\n", f.Pos, f.Message, f.Analyzer)
	}
	if len(findings) > 0 {
		fmt.Fprintf(os.Stderr, "phantomlint: %d finding(s)\n", len(findings))
		os.Exit(1)
	}
}

func selectAnalyzers(names string) ([]*analysis.Analyzer, error) {
	if names == "" {
		return suite, nil
	}
	byName := make(map[string]*analysis.Analyzer, len(suite))
	for _, a := range suite {
		byName[a.Name] = a
	}
	var out []*analysis.Analyzer
	for _, n := range strings.Split(names, ",") {
		n = strings.TrimSpace(n)
		a := byName[n]
		if a == nil {
			return nil, fmt.Errorf("unknown analyzer %q (try -list)", n)
		}
		out = append(out, a)
	}
	return out, nil
}
