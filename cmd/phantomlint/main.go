// Command phantomlint runs the repository's custom determinism and
// zero-tax-tracing analyzers (internal/analysis/...) over Go packages.
//
// Standalone (the mode verify.sh, make lint and CI use):
//
//	go run ./cmd/phantomlint ./...            # analyze everything
//	go run ./cmd/phantomlint -run maporder ./internal/sniff/
//	go run ./cmd/phantomlint -json ./...      # machine-readable findings
//	go run ./cmd/phantomlint -list            # describe the suite
//
// Packages are analyzed in dependency waves (imports before importers) so
// cross-package facts — taint summaries, wall-clock-boundary marks — are
// always complete when a package is reached; within a wave, packages run
// concurrently (-parallel). Output is byte-identical at any parallelism.
//
// Exit status is 0 when no findings survive //lint:allow suppression,
// 1 when findings are reported, 2 on usage or load errors.
//
// The binary also speaks the `go vet -vettool` unit-checker protocol
// (see vettool.go):
//
//	go build -o /tmp/phantomlint ./cmd/phantomlint
//	go vet -vettool=/tmp/phantomlint ./...
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"
	"time"

	"repro/internal/analysis"
	"repro/internal/analysis/detflow"
	"repro/internal/analysis/goroutineguard"
	"repro/internal/analysis/load"
	"repro/internal/analysis/maporder"
	"repro/internal/analysis/resetalloc"
	"repro/internal/analysis/simdeterminism"
	"repro/internal/analysis/timerguard"
	"repro/internal/analysis/traceguard"
	"repro/internal/analysis/wallclockboundary"
)

// suite is the phantomlint analyzer set, in reporting order.
var suite = []*analysis.Analyzer{
	detflow.Analyzer,
	goroutineguard.Analyzer,
	maporder.Analyzer,
	resetalloc.Analyzer,
	simdeterminism.Analyzer,
	timerguard.Analyzer,
	traceguard.Analyzer,
	wallclockboundary.Analyzer,
}

func main() {
	// The vet driver invokes the tool as `phantomlint -V=full` and then
	// `phantomlint <file>.cfg`; detect that protocol before flag parsing
	// so the standalone flags don't collide with vet's.
	if vettoolMain(suite) {
		return
	}

	listFlag := flag.Bool("list", false, "list the analyzers and exit")
	runFlag := flag.String("run", "", "comma-separated analyzer names to run (default: all)")
	parallelFlag := flag.Int("parallel", runtime.GOMAXPROCS(0), "max packages analyzed concurrently per dependency wave")
	jsonFlag := flag.Bool("json", false, "emit findings as JSON (suppressed findings included, marked)")
	verboseFlag := flag.Bool("v", false, "report wall time and wave schedule to stderr")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: phantomlint [-list] [-run name,name] [-parallel n] [-json] [-v] [packages]\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	if *listFlag {
		for _, a := range suite {
			fmt.Printf("%s: %s\n", a.Name, a.Doc)
		}
		return
	}

	analyzers, err := selectAnalyzers(*runFlag)
	if err != nil {
		fmt.Fprintln(os.Stderr, "phantomlint:", err)
		os.Exit(2)
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	wd, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(os.Stderr, "phantomlint:", err)
		os.Exit(2)
	}
	start := time.Now()
	pkgs, err := load.Packages(wd, patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "phantomlint:", err)
		os.Exit(2)
	}
	loaded := time.Now()

	// JSON output keeps suppressed findings (flagged) so downstream
	// tooling can audit //lint:allow usage; only live findings fail.
	findings, _, err := analysis.RunGraph(pkgs, analyzers, analysis.GraphOptions{
		Parallel:          *parallelFlag,
		IncludeSuppressed: *jsonFlag,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "phantomlint:", err)
		os.Exit(2)
	}
	done := time.Now()

	if *verboseFlag {
		waves := analysis.Waves(pkgs)
		sizes := make([]string, len(waves))
		for i, w := range waves {
			sizes[i] = fmt.Sprint(len(w))
		}
		fmt.Fprintf(os.Stderr, "phantomlint: %d packages in %d waves [%s], parallel=%d\n",
			len(pkgs), len(waves), strings.Join(sizes, " "), *parallelFlag)
		fmt.Fprintf(os.Stderr, "phantomlint: load %.2fs, analysis %.2fs, total %.2fs\n",
			loaded.Sub(start).Seconds(), done.Sub(loaded).Seconds(), done.Sub(start).Seconds())
	}

	live := 0
	for _, f := range findings {
		if !f.Suppressed {
			live++
		}
	}

	if *jsonFlag {
		if err := writeJSON(os.Stdout, findings); err != nil {
			fmt.Fprintln(os.Stderr, "phantomlint:", err)
			os.Exit(2)
		}
	} else {
		for _, f := range findings {
			fmt.Printf("%s: %s (%s)\n", f.Pos, f.Message, f.Analyzer)
		}
	}
	if live > 0 {
		fmt.Fprintf(os.Stderr, "phantomlint: %d finding(s)\n", live)
		os.Exit(1)
	}
}

// jsonFinding is one diagnostic in -json output. The schema is stable:
// tooling (CI annotations, editors) may rely on these field names.
type jsonFinding struct {
	Analyzer   string `json:"analyzer"`
	File       string `json:"file"`
	Line       int    `json:"line"`
	Col        int    `json:"col"`
	Message    string `json:"message"`
	Suppressed bool   `json:"suppressed,omitempty"`
}

// jsonReport is the -json document: versioned so consumers can detect
// schema changes.
type jsonReport struct {
	Version  int           `json:"version"`
	Findings []jsonFinding `json:"findings"`
}

func writeJSON(w *os.File, findings []analysis.Finding) error {
	report := jsonReport{Version: 1, Findings: []jsonFinding{}}
	for _, f := range findings {
		report.Findings = append(report.Findings, jsonFinding{
			Analyzer:   f.Analyzer,
			File:       f.Pos.Filename,
			Line:       f.Pos.Line,
			Col:        f.Pos.Column,
			Message:    f.Message,
			Suppressed: f.Suppressed,
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "\t")
	return enc.Encode(report)
}

func selectAnalyzers(names string) ([]*analysis.Analyzer, error) {
	if names == "" {
		return suite, nil
	}
	byName := make(map[string]*analysis.Analyzer, len(suite))
	for _, a := range suite {
		byName[a.Name] = a
	}
	var out []*analysis.Analyzer
	for _, n := range strings.Split(names, ",") {
		n = strings.TrimSpace(n)
		a := byName[n]
		if a == nil {
			return nil, fmt.Errorf("unknown analyzer %q (try -list)", n)
		}
		out = append(out, a)
	}
	return out, nil
}
