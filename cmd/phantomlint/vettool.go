// go vet -vettool support: the unit-checker protocol, stdlib-only.
//
// cmd/go drives a vettool in three steps:
//
//	tool -flags          → JSON description of the tool's flags
//	tool -V=full         → version line mixed into the build cache key
//	tool [-json] x.cfg   → analyze one package described by the JSON cfg
//
// The cfg names the package's Go files and maps its imports to compiled
// export-data files from the build cache, which the stdlib gc importer
// can read directly via a lookup function — so this mode needs neither
// the source importer nor golang.org/x/tools.
//
// Since phantomlint v2 the suite exchanges facts (taint summaries,
// wall-clock-boundary marks), and each vet unit is a separate process, so
// facts ride the driver's .vetx files: PackageVetx maps each import to
// the fact file its unit wrote, which seeds this unit's store; VetxOutput
// receives this unit's own fact file. Dependency-only packages arrive
// with VetxOnly=true — module-local ones get a real facts-only pass
// (their summaries are what make cross-package taint work), while stdlib
// and external dependencies write an empty file: the analyzers' root
// tables already cover them, so the vettool and the standalone driver
// reach identical verdicts.
package main

import (
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"strings"

	"repro/internal/analysis"
	"repro/internal/analysis/load"
)

// vettoolVersion feeds the build cache key; bump it when analyzer
// semantics or the fact wire format change so cached vet verdicts and
// .vetx files invalidate.
const vettoolVersion = "phantomlint version 3 " +
	"suite=detflow,goroutineguard,maporder,resetalloc,simdeterminism,timerguard,traceguard,wallclockboundary " +
	"factfmt=1"

// vetConfig is the package description cmd/go writes for a vettool. Field
// set and meaning follow the x/tools unitchecker contract.
type vetConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoFiles                   []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	PackageVetx               map[string]string
	Standard                  map[string]bool
	VetxOnly                  bool
	VetxOutput                string
	GoVersion                 string
	SucceedOnTypecheckFailure bool
}

// vettoolMain detects and serves a vet-driver invocation. It returns true
// when it handled the process (and may have exited), false when the
// arguments are for the standalone CLI.
func vettoolMain(suite []*analysis.Analyzer) bool {
	args := os.Args[1:]
	jsonOut := false
	cfgPath := ""
	for _, a := range args {
		switch {
		case a == "-V=full":
			fmt.Println(vettoolVersion)
			return true
		case a == "-flags":
			type flagDef struct {
				Name  string
				Bool  bool
				Usage string
			}
			defs := []flagDef{
				{Name: "V", Bool: false, Usage: "print version and exit"},
				{Name: "flags", Bool: true, Usage: "print flags in JSON"},
				{Name: "json", Bool: true, Usage: "emit JSON output"},
			}
			b, _ := json.Marshal(defs)
			fmt.Println(string(b))
			return true
		case a == "-json":
			jsonOut = true
		case strings.HasSuffix(a, ".cfg"):
			cfgPath = a
		}
	}
	if cfgPath == "" {
		return false
	}
	if err := runUnitchecker(cfgPath, jsonOut, suite); err != nil {
		fmt.Fprintln(os.Stderr, "phantomlint:", err)
		os.Exit(1)
	}
	return true
}

// moduleLocal reports whether an import path belongs to this module —
// the only packages whose facts must be computed from source. Everything
// else is covered by the analyzers' root tables.
func moduleLocal(path string) bool {
	return path == "repro" || strings.HasPrefix(path, "repro/")
}

func runUnitchecker(cfgPath string, jsonOut bool, suite []*analysis.Analyzer) error {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		return err
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		return fmt.Errorf("parsing %s: %v", cfgPath, err)
	}

	// The driver expects a facts file for every package it schedules,
	// dependencies included. Non-local dependencies carry no facts, so an
	// empty file satisfies the contract and keeps their units cheap.
	if cfg.VetxOnly && !moduleLocal(cfg.ImportPath) {
		if cfg.VetxOutput != "" {
			return os.WriteFile(cfg.VetxOutput, []byte{}, 0o666)
		}
		return nil
	}

	// Seed the store with every dependency's fact file. Encode re-emits
	// inherited facts, so facts flow through indirect dependencies even
	// when the middle package exports nothing of its own.
	store := analysis.NewStore(suite)
	for _, vetxFile := range cfg.PackageVetx {
		depData, err := os.ReadFile(vetxFile)
		if err != nil {
			return fmt.Errorf("reading dependency facts: %v", err)
		}
		if err := store.Decode(depData); err != nil {
			return fmt.Errorf("decoding %s: %v", vetxFile, err)
		}
	}

	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			if cfg.SucceedOnTypecheckFailure {
				return nil
			}
			return err
		}
		files = append(files, f)
	}

	compilerImporter := importer.ForCompiler(fset, cfg.Compiler, func(path string) (io.ReadCloser, error) {
		if canonical, ok := cfg.ImportMap[path]; ok {
			path = canonical
		}
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	})
	info := load.NewInfo()
	conf := types.Config{Importer: compilerImporter}
	tpkg, err := conf.Check(cfg.ImportPath, fset, files, info)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return nil
		}
		return fmt.Errorf("type-checking %s: %v", cfg.ImportPath, err)
	}

	pkg := &analysis.Package{
		ImportPath: cfg.ImportPath,
		Fset:       fset,
		Files:      files,
		Pkg:        tpkg,
		TypesInfo:  info,
	}
	findings, store, err := analysis.RunGraph([]*analysis.Package{pkg}, suite, analysis.GraphOptions{
		Store:     store,
		FactsOnly: cfg.VetxOnly,
	})
	if err != nil {
		return err
	}
	// The standalone loader analyzes non-test files only (the invariants
	// govern simulation code; tests legitimately use wall-clock timeouts
	// and ad-hoc output). vet drives test variants through the same cfg
	// path, so drop test-file findings to keep the two modes' verdicts
	// identical.
	kept := findings[:0]
	for _, f := range findings {
		if !strings.HasSuffix(f.Pos.Filename, "_test.go") {
			kept = append(kept, f)
		}
	}
	findings = kept

	// Write facts before any reporting path can exit: the driver needs
	// the file even when the unit has diagnostics.
	if cfg.VetxOutput != "" {
		factData, err := store.Encode()
		if err != nil {
			return err
		}
		if err := os.WriteFile(cfg.VetxOutput, factData, 0o666); err != nil {
			return err
		}
	}
	if len(findings) == 0 {
		return nil
	}
	if jsonOut {
		// {"pkg": {"analyzer": [{"posn": ..., "message": ...}]}}
		type jsonDiag struct {
			Posn    string `json:"posn"`
			Message string `json:"message"`
		}
		byAnalyzer := make(map[string][]jsonDiag)
		for _, f := range findings {
			byAnalyzer[f.Analyzer] = append(byAnalyzer[f.Analyzer], jsonDiag{Posn: f.Pos.String(), Message: f.Message})
		}
		out := map[string]map[string][]jsonDiag{cfg.ImportPath: byAnalyzer}
		b, _ := json.MarshalIndent(out, "", "\t")
		fmt.Println(string(b))
		return nil
	}
	for _, f := range findings {
		fmt.Fprintf(os.Stderr, "%s: %s (%s)\n", f.Pos, f.Message, f.Analyzer)
	}
	os.Exit(2)
	return nil
}
