package main

import "testing"

func TestRunRejectsBadInput(t *testing.T) {
	if err := run([]string{}); err == nil {
		t.Fatal("no label should fail")
	}
	if err := run([]string{"ZZTOP"}); err == nil {
		t.Fatal("unknown label should fail")
	}
}

func TestRunList(t *testing.T) {
	if err := run([]string{"-list"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunProfilesADevice(t *testing.T) {
	if err := run([]string{"-trials", "1", "K2"}); err != nil {
		t.Fatal(err)
	}
}
