// Command phantom-profile runs the Section IV-C profiling procedure
// against one catalog device and prints its measured timeout-behaviour
// parameters and delay windows.
//
// Usage:
//
//	phantom-profile [-seed N] [-trials N] <label>
//	phantom-profile -list
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/device"
	"repro/internal/experiment"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "phantom-profile:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("phantom-profile", flag.ContinueOnError)
	seed := fs.Int64("seed", 1, "deterministic seed")
	trials := fs.Int("trials", 3, "trials per message class")
	list := fs.Bool("list", false, "list catalog devices and exit")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *list {
		printCatalog()
		return nil
	}
	if fs.NArg() != 1 {
		fs.Usage()
		return fmt.Errorf("expected a device label (try -list)")
	}
	label := fs.Arg(0)

	truth, err := device.Lookup(label)
	if err != nil {
		return err
	}
	fmt.Printf("Profiling %s (%s %s, %s)\n\n", label, truth.Vendor, truth.Model, truth.Class)

	tb, err := experiment.NewTestbed(experiment.TestbedConfig{Seed: *seed, Devices: []string{label}})
	if err != nil {
		return err
	}
	atk, err := tb.NewAttacker()
	if err != nil {
		return err
	}
	h, err := tb.Hijack(atk, label)
	if err != nil {
		return err
	}
	tb.Start()
	lab, err := tb.NewLab(h, label)
	if err != nil {
		return err
	}
	lab.Trials = *trials
	lab.Recovery = 30 * time.Second
	m, err := lab.Profile()
	if err != nil {
		return err
	}

	fmt.Println("Measured timeout behaviour (Section IV-B parameters):")
	if m.OnDemand {
		fmt.Println("  session:            on-demand (opened per event)")
	} else if m.HasKeepAlive {
		fmt.Printf("  keep-alive period:  %v (%s pattern)\n", m.KeepAlivePeriod.Round(time.Millisecond), m.Pattern)
		fmt.Printf("  keep-alive timeout: %v\n", m.KeepAliveTimeout.Round(time.Millisecond))
	} else {
		fmt.Println("  session:            long-lived, no keep-alives")
	}
	printTimeout("event message timeout", m.EventTimeout)
	printTimeout("command timeout", m.CommandTimeout)
	if m.ServerIdleTimeout > 0 {
		fmt.Printf("  server idle reap:   %v\n", m.ServerIdleTimeout.Round(time.Millisecond))
	}

	fmt.Println("\nAttack windows:")
	if lo, hi, ok := m.EventWindow(); ok {
		fmt.Printf("  e-Delay: [%v, %v]\n", lo.Round(time.Millisecond), hi.Round(time.Millisecond))
	} else {
		fmt.Println("  e-Delay: unbounded (∞)")
	}
	if truth.CommandAttr != "" {
		if lo, hi, ok := m.CommandWindow(); ok {
			fmt.Printf("  c-Delay: [%v, %v]\n", lo.Round(time.Millisecond), hi.Round(time.Millisecond))
		} else {
			fmt.Println("  c-Delay: unbounded (∞)")
		}
	} else {
		fmt.Println("  c-Delay: n/a (no actuator)")
	}
	return nil
}

func printTimeout(name string, d time.Duration) {
	if d > 0 {
		fmt.Printf("  %-19s %v\n", name+":", d.Round(time.Millisecond))
		return
	}
	fmt.Printf("  %-19s none (∞)\n", name+":")
}

func printCatalog() {
	fmt.Println("Cloud-connected devices (Table I):")
	for _, p := range device.CloudProfiles() {
		via := ""
		if p.ViaHub != "" {
			via = " via " + p.ViaHub
		}
		fmt.Printf("  %-5s %-40s %s%s\n", p.Label, p.Model, p.Transport, via)
	}
	fmt.Println("\nHomeKit accessories (Table II):")
	for _, p := range device.LocalProfiles() {
		fmt.Printf("  %-5s %-40s %s\n", p.Label, p.Model, p.Transport)
	}
}
