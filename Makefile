GO ?= go

# Perf-regression harness knobs (see DESIGN.md §9). BENCH_OUT is where
# `bench-json` writes the canonical document; CI points it elsewhere so the
# committed trajectory file is never clobbered by a run on foreign
# hardware. BENCHTIME=1x gives a fast smoke recording.
BENCHTIME ?= 2s
BENCH_OUT ?= BENCH_hotpath.json
BENCH_PKGS = . ./internal/simtime ./internal/tcpsim
BENCH_MATCH = ^(BenchmarkTableICloudDevices|BenchmarkTableIIIPoCCases|BenchmarkSimulatedHomeHour|BenchmarkFleetCampaign|BenchmarkFleetCampaignReuse|BenchmarkReplayCampaign|BenchmarkTimerChurn|BenchmarkTimerReset|BenchmarkRTORearm)$$

.PHONY: all build vet lint test race verify bench bench-json bench-check

all: verify

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# lint runs the phantomlint suite (internal/analysis: simdeterminism,
# maporder, traceguard, timerguard, resetalloc) over the whole module. See DESIGN.md
# §10 for what each analyzer enforces and the //lint:allow suppression
# policy. Also usable as `go vet -vettool=$(go build -o /tmp/pl
# ./cmd/phantomlint && echo /tmp/pl) ./...`.
lint:
	$(GO) run ./cmd/phantomlint ./...

test:
	$(GO) test ./...

# The packages with real goroutine concurrency: the parallel table runner,
# the obs snapshot/merge boundary it synchronises through, and the fleet
# sharded worker pool.
race:
	$(GO) test -race ./internal/experiment/ ./internal/obs/ ./internal/fleet/

verify: build vet lint test race

bench:
	$(GO) test -bench=. -benchmem .

# bench-json records the tier-1 hot-path benchmarks as a byte-stable JSON
# document. The committed BENCH_hotpath.json is the perf trajectory;
# bench-check diffs a fresh recording against it. On foreign hardware
# (CI), compare with `-ci`: timing is machine-bound, allocation counts
# are not.
bench-json:
	$(GO) test -run '^$$' -bench '$(BENCH_MATCH)' -benchmem -benchtime $(BENCHTIME) $(BENCH_PKGS) \
		| $(GO) run ./cmd/benchjson -out $(BENCH_OUT)

bench-check:
	$(MAKE) bench-json BENCH_OUT=/tmp/bench-current.json
	$(GO) run ./cmd/benchjson -compare BENCH_hotpath.json -current /tmp/bench-current.json
