GO ?= go

.PHONY: all build vet test race verify bench

all: verify

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# The packages with real goroutine concurrency: the parallel table runner
# and the obs snapshot/merge boundary it synchronises through.
race:
	$(GO) test -race ./internal/experiment/ ./internal/obs/

verify: build vet test race

bench:
	$(GO) test -bench=. -benchmem .
