// Package repro's benchmark harness regenerates every table and finding
// of the paper's evaluation section, one benchmark per artifact:
//
//	BenchmarkTableICloudDevices     — Table I  (33 cloud devices)
//	BenchmarkTableIILocalDevices    — Table II (17 HomeKit accessories)
//	BenchmarkTableIIIPoCCases       — Table III (11 PoC attacks)
//	BenchmarkVerificationTest       — Section VI-C verification (100%)
//	BenchmarkFinding1OnDemand       — Finding 1
//	BenchmarkFinding2HalfOpen       — Finding 2
//	BenchmarkFinding3Unidirectional — Finding 3
//	BenchmarkDefenseAckTimeout      — Section VII-A sweep
//	BenchmarkDefenseTimestamp       — Section VII-B evaluation
//	BenchmarkAblationMargin         — release-margin design sweep
//	BenchmarkAblationBoundary       — detection-cliff sweep
//	BenchmarkFleetCampaign          — fleet-scale campaign throughput
//	BenchmarkReplayCampaign         — record-and-replay family at fleet scale
//
// Each benchmark reports domain metrics alongside timing: achieved delay
// windows, success fractions, residual windows. Run with:
//
//	go test -bench=. -benchmem
//
// The rendered paper-style tables come from cmd/phantomlab; the benchmarks
// exist to regenerate (and time) the underlying data.
package repro

import (
	"runtime"
	"testing"
	"time"

	"repro/internal/experiment"
	"repro/internal/fleet"
	"repro/internal/obs"
	"repro/internal/simtime"
)

func BenchmarkTableICloudDevices(b *testing.B) {
	var rows []experiment.TableRow
	for i := 0; i < b.N; i++ {
		rows = e1Rows(int64(i))
	}
	reportWindowStats(b, rows)
}

func e1Rows(seed int64) []experiment.TableRow {
	return experiment.RunTable1(experiment.TableOptions{Seed: 41 + seed, Trials: 2})
}

func BenchmarkTableIILocalDevices(b *testing.B) {
	var rows []experiment.TableRow
	for i := 0; i < b.N; i++ {
		rows = experiment.RunTable2(experiment.TableOptions{
			Seed: 42 + int64(i), Trials: 1, UnboundedDemo: 2 * time.Hour,
		})
	}
	reportWindowStats(b, rows)
}

func reportWindowStats(b *testing.B, rows []experiment.TableRow) {
	b.Helper()
	var sum float64
	verified, stealthy, unbounded := 0, 0, 0
	for _, r := range rows {
		if r.Err != nil {
			b.Fatalf("%s: %v", r.Label, r.Err)
		}
		sum += r.EventDelayAchieved.Seconds()
		if r.ParametersVerified {
			verified++
		}
		if r.StealthOK {
			stealthy++
		}
		if r.EventDelayUnbounded {
			unbounded++
		}
	}
	n := float64(len(rows))
	b.ReportMetric(sum/n, "eDelay-s/device")
	b.ReportMetric(float64(verified)/n, "verified-frac")
	b.ReportMetric(float64(stealthy)/n, "stealth-frac")
	b.ReportMetric(float64(unbounded), "unbounded-devices")
}

func BenchmarkTableIIIPoCCases(b *testing.B) {
	var results []experiment.CaseResult
	for i := 0; i < b.N; i++ {
		results = experiment.RunCases(experiment.Table3Cases(), 500+int64(i))
	}
	succeeded := 0
	for _, r := range results {
		if r.Err != nil {
			b.Fatalf("case %d: %v", r.Case.ID, r.Err)
		}
		if r.Succeeded() {
			succeeded++
		}
	}
	b.ReportMetric(float64(succeeded), "cases-succeeded")
	b.ReportMetric(float64(len(results)), "cases-total")
}

func BenchmarkVerificationTest(b *testing.B) {
	labels := []string{"C1", "L2", "CM1", "K2", "M7", "A1"}
	var results []experiment.VerifyResult
	for i := 0; i < b.N; i++ {
		results = experiment.RunVerification(labels, experiment.VerifyOptions{
			Seed: 600 + int64(i), Trials: 3,
		})
	}
	perfect := 0
	for _, r := range results {
		if r.Err != nil {
			b.Fatalf("%s: %v", r.Label, r.Err)
		}
		if r.Perfect() {
			perfect++
		}
	}
	b.ReportMetric(float64(perfect)/float64(len(results)), "perfect-frac")
}

func benchFinding(b *testing.B, id int) {
	b.Helper()
	holds := false
	for i := 0; i < b.N; i++ {
		results := experiment.RunFindings(700 + int64(i)*3)
		r := results[id-1]
		if r.Err != nil {
			b.Fatal(r.Err)
		}
		holds = r.Holds
	}
	v := 0.0
	if holds {
		v = 1
	}
	b.ReportMetric(v, "holds")
}

func BenchmarkFinding1OnDemand(b *testing.B)       { benchFinding(b, 1) }
func BenchmarkFinding2HalfOpen(b *testing.B)       { benchFinding(b, 2) }
func BenchmarkFinding3Unidirectional(b *testing.B) { benchFinding(b, 3) }

func BenchmarkDefenseAckTimeout(b *testing.B) {
	timeouts := []time.Duration{20 * time.Second, 10 * time.Second, 5 * time.Second}
	var results []experiment.AckDefenseResult
	for i := 0; i < b.N; i++ {
		results = experiment.RunAckTimeoutDefense("C2", timeouts, 800+int64(i))
	}
	for _, r := range results {
		if r.Err != nil {
			b.Fatal(r.Err)
		}
	}
	b.ReportMetric(results[0].AchievedDelay.Seconds(), "stock-window-s")
	b.ReportMetric(results[len(results)-1].AchievedDelay.Seconds(), "hardened-window-s")
	b.ReportMetric(float64(results[len(results)-1].TrafficPerHour)/float64(results[0].TrafficPerHour), "traffic-blowup")
}

func BenchmarkDefenseTimestamp(b *testing.B) {
	var res experiment.TimestampDefenseResult
	for i := 0; i < b.N; i++ {
		res = experiment.RunTimestampDefense(820 + int64(i))
	}
	if res.Err != nil {
		b.Fatal(res.Err)
	}
	metric := func(ok bool) float64 {
		if ok {
			return 1
		}
		return 0
	}
	b.ReportMetric(metric(res.TriggerDelayBlocked), "trigger-blocked")
	b.ReportMetric(metric(res.ConditionDelayStillWorks), "condition-bypass")
}

// BenchmarkSimulatedHomeHour measures raw simulator throughput: one hour
// of a ten-device home with keep-alives, per iteration.
func BenchmarkSimulatedHomeHour(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tb, err := experiment.NewTestbed(experiment.TestbedConfig{
			Seed:    int64(i),
			Devices: []string{"C1", "M1", "L2", "C2", "M3", "P2", "CM1", "K2", "T1", "SD1"},
		})
		if err != nil {
			b.Fatal(err)
		}
		tb.Start()
		tb.Clock.RunFor(time.Hour)
		if tb.TotalAlarmCount() != 0 {
			b.Fatalf("idle hour raised %d alarms", tb.TotalAlarmCount())
		}
	}
}

// obsWorkload drives the simulator's hottest path — the event loop — for a
// fixed number of events. A nil registry exercises the uninstrumented
// (nil-handle) branch, which is what the pre-observability code paid.
func obsWorkload(reg *obs.Registry) {
	clk := simtime.NewClock()
	clk.Instrument(reg)
	const events = 200_000
	n := 0
	var tick func()
	tick = func() {
		n++
		if n < events {
			clk.Schedule(time.Millisecond, tick)
		}
	}
	// Several concurrent chains keep the heap non-trivial.
	for i := 0; i < 8; i++ {
		clk.Schedule(time.Duration(i)*time.Microsecond, tick)
	}
	clk.Run()
}

// timeWorkload measures one workload run, from a clean GC state so
// collector pauses from earlier trials don't land inside the timing.
func timeWorkload(reg *obs.Registry) time.Duration {
	runtime.GC()
	start := time.Now()
	obsWorkload(reg)
	return time.Since(start)
}

// BenchmarkObsInstrumentedHotPath asserts the observability layer's event
// loop tax: a fully instrumented clock must stay within 5% of the
// uninstrumented (nil-registry) path, which matches the pre-obs seed code.
// Trials of the two variants are interleaved and the minimum of each is
// compared, so machine-load drift affects both sides equally.
func BenchmarkObsInstrumentedHotPath(b *testing.B) {
	obsWorkload(nil) // warm-up
	obsWorkload(obs.NewRegistry())
	var base, inst time.Duration
	for trial := 0; trial < 16; trial++ {
		if d := timeWorkload(nil); base == 0 || d < base {
			base = d
		}
		if d := timeWorkload(obs.NewRegistry()); inst == 0 || d < inst {
			inst = d
		}
	}
	overhead := float64(inst)/float64(base) - 1
	b.ReportMetric(overhead*100, "overhead-%")
	if overhead > 0.05 {
		b.Fatalf("instrumented hot path %.1f%% over uninstrumented (%v vs %v), budget is 5%%",
			overhead*100, inst, base)
	}
	for i := 0; i < b.N; i++ {
		obsWorkload(obs.NewRegistry())
	}
}

// BenchmarkTraceEmit measures the raw cost of one flight-recorder event on
// a pre-sized ring — the per-event price every instrumented layer pays when
// tracing is enabled.
func BenchmarkTraceEmit(b *testing.B) {
	tr := obs.NewTrace(4096)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tr.Emit(time.Duration(i), "tcpsim", "rto_fired", "C1", int64(i))
	}
	if tr.Len() == 0 {
		b.Fatal("trace recorded nothing")
	}
}

// traceWorkload runs the Table I hot path for one device. TraceCap 0 keeps
// the default flight recorder; -1 disables it, nil-ing every capture-time
// handle (the zero-tax baseline).
func traceWorkload(b *testing.B, traceCap int) {
	b.Helper()
	rows := experiment.RunTable([]string{"C1"}, experiment.TableOptions{
		Seed: 77, Trials: 1, TraceCap: traceCap,
	})
	if rows[0].Err != nil {
		b.Fatal(rows[0].Err)
	}
}

// BenchmarkTraceHotPathOverhead asserts the flight recorder's tax on the
// table measurement path: a run with the default trace ring must stay
// within 5% of a trace-disabled run. As in BenchmarkObsInstrumentedHotPath,
// trials interleave and the minimum of each side is compared, so machine
// load drifts both sides equally.
func BenchmarkTraceHotPathOverhead(b *testing.B) {
	timeTable := func(traceCap int) time.Duration {
		runtime.GC()
		start := time.Now()
		for i := 0; i < 4; i++ {
			traceWorkload(b, traceCap)
		}
		return time.Since(start)
	}
	traceWorkload(b, -1) // warm-up
	traceWorkload(b, 0)
	var base, traced time.Duration
	for trial := 0; trial < 12; trial++ {
		if d := timeTable(-1); base == 0 || d < base {
			base = d
		}
		if d := timeTable(0); traced == 0 || d < traced {
			traced = d
		}
	}
	overhead := float64(traced)/float64(base) - 1
	b.ReportMetric(overhead*100, "overhead-%")
	if overhead > 0.05 {
		b.Fatalf("traced hot path %.1f%% over trace-disabled (%v vs %v), budget is 5%%",
			overhead*100, traced, base)
	}
	for i := 0; i < b.N; i++ {
		traceWorkload(b, 0)
	}
}

// benchFleetCampaign runs the default campaign over a synthetic
// population, reporting population throughput (homes/s) and campaign
// outcome fractions. Parallelism comes from the fleet worker pool, not
// b.RunParallel: the unit of work is one whole home.
func benchFleetCampaign(b *testing.B, reuse bool) {
	const homes = 64
	var res fleet.Result
	for i := 0; i < b.N; i++ {
		c := fleet.Campaign{
			Spec:          fleet.DefaultSpec(),
			Homes:         homes,
			Workers:       runtime.GOMAXPROCS(0),
			ShardSize:     8,
			Seed:          1000 + int64(i),
			ReuseTestbeds: reuse,
		}
		var err error
		res, err = c.Run()
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(homes)*float64(b.N)/b.Elapsed().Seconds(), "homes/s")
	if res.TotalTrials > 0 {
		b.ReportMetric(float64(res.TotalSuccesses)/float64(res.TotalTrials), "success-frac")
		b.ReportMetric(float64(res.Metrics.Counter("fleet_alarms_total")), "alarms")
	}
}

// BenchmarkFleetCampaign builds every home's testbed from scratch — the
// cold-construction allocation profile.
func BenchmarkFleetCampaign(b *testing.B) { benchFleetCampaign(b, false) }

// BenchmarkFleetCampaignReuse recycles one testbed arena per worker across
// the shard's homes (Campaign.ReuseTestbeds) — the steady-state profile.
// Results are byte-identical to BenchmarkFleetCampaign's; only the
// allocation columns should differ.
func BenchmarkFleetCampaignReuse(b *testing.B) { benchFleetCampaign(b, true) }

// BenchmarkReplayCampaign measures the record-and-replay family at fleet
// scale. On top of the campaign engine's per-home cost it pays for capture
// payload retention, fingerprint-driven target selection and the raw/app
// injection ladder, so it bounds the most expensive attack family.
func BenchmarkReplayCampaign(b *testing.B) {
	const homes = 24
	var res fleet.Result
	for i := 0; i < b.N; i++ {
		c := fleet.Campaign{
			Spec: fleet.Spec{
				Name:   "replay-bench",
				Attack: fleet.AttackReplay,
				Targets: fleet.TargetSpec{
					Classes: []string{"plug", "thermostat", "water sensor"},
					PerHome: 2,
				},
			},
			Homes:     homes,
			Workers:   runtime.GOMAXPROCS(0),
			ShardSize: 4,
			Seed:      1000 + int64(i),
		}
		var err error
		res, err = c.Run()
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(homes)*float64(b.N)/b.Elapsed().Seconds(), "homes/s")
	if res.TotalTrials > 0 {
		b.ReportMetric(float64(res.TotalSuccesses)/float64(res.TotalTrials), "success-frac")
	}
}

// BenchmarkAblationMargin regenerates the release-margin sweep: the design
// parameter trading stolen delay against stealth.
func BenchmarkAblationMargin(b *testing.B) {
	margins := []time.Duration{time.Second, 2 * time.Second, 5 * time.Second, 10 * time.Second}
	var points []experiment.MarginPoint
	for i := 0; i < b.N; i++ {
		points = experiment.RunMarginAblation("C1", margins, 2, 900+int64(i))
	}
	for _, p := range points {
		if p.Err != nil {
			b.Fatal(p.Err)
		}
	}
	b.ReportMetric(points[0].MeanDelay.Seconds(), "tight-margin-delay-s")
	b.ReportMetric(points[len(points)-1].MeanDelay.Seconds(), "wide-margin-delay-s")
}

// BenchmarkAblationBoundary regenerates the detection-cliff sweep around
// the SmartThings 47s window edge.
func BenchmarkAblationBoundary(b *testing.B) {
	holds := []time.Duration{40 * time.Second, 45 * time.Second, 50 * time.Second, 60 * time.Second}
	var points []experiment.BoundaryPoint
	for i := 0; i < b.N; i++ {
		points = experiment.RunDetectionBoundary("C1", holds, 910+int64(i))
	}
	survived := 0
	for _, p := range points {
		if p.Err != nil {
			b.Fatal(p.Err)
		}
		if !p.SessionDied {
			survived++
		}
	}
	b.ReportMetric(float64(survived), "holds-inside-window")
	b.ReportMetric(float64(len(points)-survived), "holds-past-cliff")
}
